"""E5 — Section 9.2 / Lemma 20: establishing synchronization from arbitrary clocks.

The start-up algorithm does not assume the clocks begin close together.
Lemma 20 claims that the spread of nonfaulty clock values at the start of
round i obeys

    B^{i+1} ≤ B^i/2 + 2ε + 2ρ(11δ + 39ε)

whose fixed point is about 4ε: the algorithm converges geometrically from an
*arbitrary* initial spread down to a few delay-uncertainties.  We run it from
spreads that are 100x-1000x the delay, record the B^i series (the "figure"),
check the recurrence round by round, and confirm the limit.
"""

from __future__ import annotations

import pytest

from benchmarks._report import emit
from repro.analysis import (
    format_paper_vs_measured,
    format_series,
    run_startup_scenario,
    startup_spread_series,
)
from repro.core import startup_convergence_series, startup_limit, startup_round_recurrence

ROUNDS = 10


@pytest.mark.parametrize("initial_spread", [0.5, 2.0])
def test_startup_converges_from_arbitrary_spread(benchmark, bench_params,
                                                 initial_spread):
    """B^i decays from the arbitrary initial spread to ≈ 4ε (Lemma 20's limit)."""
    params = bench_params

    def measure():
        result = run_startup_scenario(params, rounds=ROUNDS,
                                      initial_spread=initial_spread, seed=7)
        return startup_spread_series(result.trace)

    series = benchmark(measure)
    paper_series = startup_convergence_series(params, series[0], len(series) - 1)
    limit = startup_limit(params)
    emit(f"E5 start-up — B^i series from spread {initial_spread}",
         format_series("measured B^i", series) + "\n" +
         format_series("paper bound  ", paper_series) + "\n" +
         format_paper_vs_measured([
             ("limit (≈ 4ε)", limit, series[-1]),
         ]))
    # Every measured round obeys the Lemma 20 recurrence, and the final spread
    # is at (or below) the fixed point.
    for before, after in zip(series, series[1:]):
        assert after <= startup_round_recurrence(params, before) + 1e-9
    assert series[-1] <= limit + 1e-9


def test_startup_with_byzantine_processes(benchmark, bench_params):
    """Convergence survives f Byzantine processes feeding random clock values."""
    params = bench_params

    def measure():
        result = run_startup_scenario(params, rounds=ROUNDS, initial_spread=1.0,
                                      fault_kind="random_noise", seed=3)
        return startup_spread_series(result.trace)

    series = benchmark(measure)
    emit("E5 start-up — with random-noise Byzantine processes",
         format_series("measured B^i", series))
    assert series[-1] <= startup_limit(params) * 2.0
    assert series[-1] < series[0] / 8.0


def test_startup_limit_tracks_epsilon(benchmark):
    """The achieved start-up closeness scales with ε (the '≈ 4ε' shape)."""
    from repro.analysis import default_parameters

    epsilons = [0.001, 0.002, 0.004]

    def sweep():
        rows = []
        for eps in epsilons:
            params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=eps)
            result = run_startup_scenario(params, rounds=ROUNDS, initial_spread=1.0,
                                          seed=11)
            series = startup_spread_series(result.trace)
            rows.append((eps, startup_limit(params), series[-1]))
        return rows

    rows = benchmark(sweep)
    from repro.analysis import format_table
    emit("E5 start-up — limit vs epsilon",
         format_table(["epsilon", "limit (paper ≈ 4ε)", "final B^i"], rows))
    for _, limit, final in rows:
        assert final <= limit + 1e-9
    finals = [final for _, _, final in rows]
    assert finals[-1] >= finals[0] * 0.5  # larger ε cannot give much tighter sync
