"""E3 — Theorem 4(a) / Lemma 7: the per-round adjustment is bounded.

The paper claims every adjustment applied by a nonfaulty process satisfies

    |ADJ| ≤ (1 + ρ)(β + ε) + ρδ        (≈ 5ε in the Section 10 discussion,
                                         since β ≈ 4ε when P is small)

A small adjustment bound matters in practice: it limits how far the clock can
jump (backwards or forwards) at a resynchronization.  We collect every
adjustment from long runs under each attacker family and compare the maximum
with the bound; we also verify the Section 10 remark that the adjustment is
roughly 5ε when β is close to its floor.
"""

from __future__ import annotations

import pytest

from benchmarks._report import emit
from repro.analysis import (
    adjustment_statistics,
    default_parameters,
    format_paper_vs_measured,
    format_table,
    run_maintenance_scenario,
)
from repro.core import adjustment_bound

ROUNDS = 20


@pytest.mark.parametrize("fault_kind", ["two_faced", "skew_early", "random_noise"])
def test_adjustment_bound_holds(benchmark, bench_params, fault_kind):
    """max |ADJ| over all nonfaulty processes and rounds stays below the bound."""
    params = bench_params

    def measure():
        result = run_maintenance_scenario(params, rounds=ROUNDS,
                                          fault_kind=fault_kind, seed=2)
        return adjustment_statistics(result.trace)

    stats = benchmark(measure)
    bound = adjustment_bound(params)
    emit(f"E3 adjustment — fault kind {fault_kind}",
         format_paper_vs_measured([
             ("max |ADJ| (Theorem 4a)", bound, stats.max_abs),
             ("mean |ADJ|", None, stats.mean_abs),
             ("adjustments applied", None, stats.count),
         ]))
    assert stats.max_abs <= bound


def test_adjustment_scales_with_epsilon(benchmark):
    """Adjustments shrink as the delay uncertainty shrinks (≈ 5ε shape)."""
    epsilons = [0.0005, 0.001, 0.002, 0.004]

    def sweep():
        rows = []
        for eps in epsilons:
            params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=eps,
                                        beta_slack=1.05)
            result = run_maintenance_scenario(params, rounds=12,
                                              fault_kind="two_faced", seed=7)
            stats = adjustment_statistics(result.trace)
            rows.append((eps, adjustment_bound(params), stats.max_abs,
                         stats.max_abs / eps if eps else None))
        return rows

    rows = benchmark(sweep)
    emit("E3 adjustment — epsilon sweep (paper: |ADJ| ≈ 5ε)",
         format_table(["epsilon", "bound", "max |ADJ|", "max|ADJ| / eps"], rows))
    for eps, bound, max_abs, _ in rows:
        assert max_abs <= bound
        # Section 10: the adjustment is "about 5ε"; allow a generous envelope.
        assert max_abs <= 7.0 * eps
    # Shape: monotone growth with epsilon.
    maxima = [m for _, _, m, _ in rows]
    assert maxima[-1] >= maxima[0]
