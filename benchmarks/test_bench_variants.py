"""E10 & E11 — Section 7 variants: k exchanges per round and mean averaging.

E10: exchanging clock values k times per round shrinks the drift term of the
steady-state spread — the paper derives β ≳ 4ε + 2ρP·2^k/(2^k − 1), so the
marginal benefit of each extra exchange halves.

E11: when n grows while f stays fixed, replacing the midpoint with the mean of
the surviving values improves the convergence rate from 1/2 to roughly
f/(n − 2f), approaching an error of about 2ε.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis import (
    default_parameters,
    format_table,
    measured_agreement,
    run_maintenance_scenario,
    steady_state_round_spread,
)
from repro.core import (
    FaultTolerantMean,
    FaultTolerantMidpoint,
    MultiExchangeProcess,
    agreement_bound,
    k_exchange_beta,
    mean_variant_rate,
)
from repro.multiset import run_approximate_agreement

# High drift so the ρP term the k-exchange variant attacks is visible.
RHO = 2e-3


def test_k_exchange_formula_shape(benchmark):
    """E10 (analytic): the β(k) formula decreases in k with halving increments."""
    params = default_parameters(n=7, f=2, rho=RHO, delta=0.01, epsilon=0.002)

    def compute():
        return [(k, k_exchange_beta(params, k)) for k in (1, 2, 3, 4)]

    rows = benchmark(compute)
    emit("E10 k-exchange — β(k) = 4ε + 2ρP·2^k/(2^k−1)",
         format_table(["k", "beta(k)"], rows))
    betas = [b for _, b in rows]
    assert all(later <= earlier for earlier, later in zip(betas, betas[1:]))
    # The k = 1 case coincides with the basic 4ε + 4ρP formula.
    assert abs(betas[0] - (4 * params.epsilon + 4 * RHO * params.round_length)) < 1e-12


def test_k_exchange_measured_spread(benchmark):
    """E10 (measured): more exchanges per round give a tighter per-round spread."""
    params = default_parameters(n=7, f=2, rho=RHO, delta=0.01, epsilon=0.002)
    params = params.with_round_length(
        MultiExchangeProcess(params, 3).minimum_round_length() * 1.1)

    def sweep():
        rows = []
        for k in (1, 2, 3):
            result = run_maintenance_scenario(params, rounds=8, fault_kind=None,
                                              exchanges_per_round=k, seed=6)
            spread = steady_state_round_spread(result.trace, skip_rounds=3)
            rows.append((k, k_exchange_beta(params, k), spread))
        return rows

    rows = benchmark(sweep)
    emit("E10 k-exchange — measured steady-state spread",
         format_table(["k", "paper beta(k)", "measured spread"], rows))
    spreads = [s for _, _, s in rows]
    # Shape: k = 3 is no worse than k = 1 (the drift term can only shrink).
    assert spreads[-1] <= spreads[0] * 1.25 + 1e-5
    for _, paper, measured in rows:
        assert measured <= paper + 1e-9


def test_mean_variant_convergence_rate(benchmark):
    """E11: at fixed f, the mean's convergence rate improves like f/(n−2f)."""

    def sweep():
        rows = []
        for n in (7, 13, 19):
            initial = [i / (n - 2 - 1) if i < n - 2 else 0.0 for i in range(n)]
            byz = [n - 2, n - 1]
            midpoint = run_approximate_agreement(initial, f=2, rounds=6,
                                                 byzantine_ids=byz)
            mean = run_approximate_agreement(initial, f=2, rounds=6,
                                             byzantine_ids=byz, use_mean=True)
            worst_mean_factor = max((after / before for before, after in
                                     zip(mean.spreads, mean.spreads[1:])
                                     if before > 1e-12), default=0.0)
            rows.append((n, mean_variant_rate(n, 2), worst_mean_factor,
                         midpoint.final_spread, mean.final_spread))
        return rows

    rows = benchmark(sweep)
    emit("E11 mean variant — convergence rate vs n at f=2",
         format_table(["n", "paper rate f/(n-2f)", "measured rate",
                       "midpoint final spread", "mean final spread"], rows))
    for n, paper_rate, measured_rate, _, _ in rows:
        assert measured_rate <= paper_rate + 1e-9
    # Shape: the measured rate improves (decreases) as n grows.
    rates = [r for _, _, r, _, _ in rows]
    assert rates[-1] <= rates[0]


def test_mean_variant_in_the_full_algorithm(benchmark):
    """E11 (end to end): the mean variant also satisfies Theorem 16 in situ."""
    params = default_parameters(n=13, f=2, rho=1e-4, delta=0.01, epsilon=0.002)

    def measure():
        skews = {}
        for name, averaging in (("midpoint", FaultTolerantMidpoint()),
                                ("mean", FaultTolerantMean())):
            result = run_maintenance_scenario(params, rounds=10,
                                              fault_kind="two_faced",
                                              averaging=averaging, seed=1)
            start = result.tmax0 + 2 * params.round_length
            skews[name] = measured_agreement(result.trace, start, result.end_time,
                                             samples=150)
        return skews

    skews = benchmark(measure)
    gamma = agreement_bound(params)
    emit("E11 mean variant — end-to-end agreement (n=13, f=2)",
         format_table(["averaging", "agreement", "gamma"],
                      [(k, v, gamma) for k, v in skews.items()]))
    assert skews["midpoint"] <= gamma
    assert skews["mean"] <= gamma
