"""A1-A4 — ablations of the design choices DESIGN.md calls out.

These are not claims made by the paper; they quantify the effect of the
design knobs the paper discusses qualitatively, on the same reference
workload used everywhere else:

* A1 — instantaneous vs amortized application of adjustments (Section 4.1's
  "stretch a negative adjustment out" remark): the amortized variant keeps
  local time monotone at no cost in steady-state agreement;
* A2 — the collection-window length ``(1+ρ)(β+δ+ε)``: shortening it below the
  value the analysis requires makes correct processes miss each other's
  messages and degrades agreement (the window is not slack);
* A3 — fault-tolerant averaging vs a plain mean under an attack with
  out-of-range values: the `reduce` step is what buys Byzantine tolerance;
* A4 — the number of *actual* attackers at fixed averaging configuration
  (0..f..f+1): agreement is flat up to f and collapses past it.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks._report import emit
from repro.analysis import (
    format_table,
    measured_agreement,
    run_maintenance_scenario,
    sample_grid,
    sweep_fault_count,
)
from repro.core import (
    AmortizedWelchLynchProcess,
    PlainMean,
    WelchLynchProcess,
    agreement_bound,
)

ROUNDS = 10


def _agreement(result, params, settle_rounds=2, samples=150):
    start = result.tmax0 + settle_rounds * params.round_length
    return measured_agreement(result.trace, start, result.end_time, samples=samples)


def test_ablation_amortized_vs_instantaneous(benchmark, bench_params):
    """A1: spreading adjustments keeps time monotone without hurting agreement."""
    params = bench_params

    def measure():
        plain = run_maintenance_scenario(params, rounds=ROUNDS,
                                         fault_kind="two_faced", seed=3)
        amortized = run_maintenance_scenario(
            params, rounds=ROUNDS, fault_kind="two_faced", seed=3,
            correct_process_factory=lambda p, r: AmortizedWelchLynchProcess(
                p, steps=10, max_rounds=r))

        def min_step(trace):
            grid = sample_grid(plain.tmax0, plain.end_time, 400)
            worst = float("inf")
            for pid in trace.nonfaulty_ids:
                values = [trace.local_time(pid, t) for t in grid]
                worst = min(worst, min(b - a for a, b in zip(values, values[1:])))
            return worst

        return {
            "instantaneous": (_agreement(plain, params), min_step(plain.trace)),
            "amortized": (_agreement(amortized, params), min_step(amortized.trace)),
        }

    rows = benchmark(measure)
    gamma = agreement_bound(params)
    emit("A1 ablation — amortized vs instantaneous adjustments",
         format_table(["variant", "agreement", "min local-time step", "gamma"],
                      [(name, agreement, step, gamma)
                       for name, (agreement, step) in rows.items()]))
    inst_agreement, inst_step = rows["instantaneous"]
    amort_agreement, amort_step = rows["amortized"]
    assert inst_agreement <= gamma
    assert amort_agreement <= gamma
    # The amortized variant never steps backwards; the instantaneous one may.
    assert amort_step >= -1e-9
    assert amort_agreement <= inst_agreement * 1.5 + 1e-4


def test_ablation_collection_window_length(benchmark, bench_params):
    """A2: the (1+ρ)(β+δ+ε) window is load-bearing, not slack."""
    params = bench_params

    def measure():
        rows = []
        for label, factor in (("paper window", 1.0), ("60% window", 0.6),
                              ("30% window", 0.3)):
            shrunk = replace(params, beta=params.beta)  # copy

            def factory(p, r, factor=factor):
                process = WelchLynchProcess(p, max_rounds=r)
                original = process._window_length

                def shorter(ctx):
                    return original(ctx) * factor

                process._window_length = shorter
                return process

            result = run_maintenance_scenario(shrunk, rounds=ROUNDS,
                                              fault_kind="two_faced", seed=5,
                                              correct_process_factory=factory)
            rows.append((label, _agreement(result, shrunk)))
        return rows

    rows = benchmark(measure)
    gamma = agreement_bound(params)
    emit("A2 ablation — collection window length",
         format_table(["window", "agreement", "gamma"],
                      [(label, value, gamma) for label, value in rows]))
    by_label = dict(rows)
    assert by_label["paper window"] <= gamma
    # A window too short to hear every nonfaulty process costs accuracy.
    assert by_label["30% window"] > by_label["paper window"]


def test_ablation_reduce_step(benchmark, bench_params):
    """A3: dropping reduce() lets out-of-range Byzantine values wreck the clocks."""
    params = bench_params

    def measure():
        tolerant = run_maintenance_scenario(params, rounds=ROUNDS,
                                            fault_kind="random_noise", seed=7)
        plain = run_maintenance_scenario(params, rounds=ROUNDS,
                                         fault_kind="random_noise",
                                         averaging=PlainMean(), seed=7)
        return {"mid(reduce(.))": _agreement(tolerant, params),
                "plain mean": _agreement(plain, params)}

    rows = benchmark(measure)
    gamma = agreement_bound(params)
    emit("A3 ablation — fault-tolerant averaging vs plain mean",
         format_table(["averaging", "agreement", "gamma"],
                      [(name, value, gamma) for name, value in rows.items()]))
    assert rows["mid(reduce(.))"] <= gamma
    assert rows["plain mean"] > 10 * rows["mid(reduce(.))"]


def test_ablation_actual_fault_count(benchmark, bench_params):
    """A4: agreement is flat up to f actual attackers and collapses past f."""
    params = bench_params

    def measure():
        return sweep_fault_count([0, 1, 2, 3], n=params.n, f=params.f,
                                 rounds=ROUNDS, seed=1)

    sweep = benchmark(measure)
    gamma = agreement_bound(params)
    emit("A4 ablation — number of actual attackers (averaging fixed at f=2)",
         format_table(sweep.headers(), sweep.rows()))
    agreements = sweep.column("agreement")
    for value in agreements[:3]:
        assert value <= gamma
    assert agreements[3] > agreements[2]
