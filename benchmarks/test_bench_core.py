"""E-core — fast-path microbenchmarks: simulator core and metrics engine.

PR 3's profiling-driven fast path (slotted events, tuple-based event queue,
indexed correction histories, merged-sweep metrics with an optional numpy
backend) targets three layers; this module times each of them and prints the
in-process speedup against the frozen seed implementations
(:mod:`repro.analysis.slowpath`).  The recorded trajectory lives in
``BENCH_6.json`` (regenerate with ``python -m repro bench``).
"""

from __future__ import annotations

import pytest

from benchmarks._report import emit
from repro.analysis import default_parameters, run_maintenance_scenario
from repro.analysis import slowpath
from repro.analysis.metrics import measured_agreement, sample_grid
from repro.bench import (
    bench_event_throughput,
    bench_trace_reconstruction,
    _metric_battery,
)
from repro.clocks import CorrectionHistory
from repro.sim import EventQueue, MessageKind
from repro.sim.traceindex import numpy_enabled

ROUNDS = 8
SAMPLES = 200


def test_event_throughput(benchmark):
    """Simulator-core event throughput (tuple-based queue + inlined loop)."""
    result = benchmark(bench_event_throughput, n=24, rounds=4, repeats=1)
    emit("E-core event throughput",
         f"{result['events_per_second']:,.0f} events/s "
         f"({result['events']} events)")
    assert result["events"] > 0


def test_raw_event_queue_push_pop(benchmark):
    """Raw push_fields/pop_fields cycling through a preloaded buffer."""

    def cycle() -> int:
        queue = EventQueue()
        for index in range(5000):
            kind = MessageKind.TIMER if index % 3 == 0 else MessageKind.ORDINARY
            queue.push_fields(kind, 0, index % 7, index, 0.0,
                              float(index % 97))
        while queue:
            queue.pop_fields()
        return queue.delivered_count

    delivered = benchmark(cycle)
    assert delivered == 5000


def test_trace_reconstruction(benchmark):
    """Indexed ``correction_at`` against a 64-correction history."""
    result = benchmark(bench_trace_reconstruction, k=64, calls=20_000,
                       repeats=1)
    emit("E-core trace reconstruction",
         f"{result['calls_per_second']:,.0f} lookups/s (k={result['k']})")
    assert result["calls_per_second"] > 0


@pytest.fixture(scope="module")
def metric_traces():
    """One silent-fault trace per benchmark size (simulation untimed)."""
    traces = {}
    for n in (10, 50, 200):
        params = default_parameters(n=n, f=2)
        traces[n] = run_maintenance_scenario(params, rounds=ROUNDS,
                                             fault_kind="silent", seed=1)
    return traces


@pytest.mark.parametrize("n", [10, 50, 200])
def test_metrics_engine(benchmark, metric_traces, n):
    """The audit battery (agreement + validity + skew series) at size n."""
    result = metric_traces[n]
    benchmark(_metric_battery, result, SAMPLES)
    # Equivalence spot check on the exact battery the benchmark timed.
    start = result.tmax0 + result.params.round_length
    fast = measured_agreement(result.trace, start, result.end_time,
                              samples=SAMPLES)
    seed = slowpath.seed_measured_agreement(result.trace, start,
                                            result.end_time, samples=SAMPLES)
    assert fast == seed
    emit(f"E-core metrics engine n={n}",
         f"agreement {fast:.6f} (bit-identical to seed path; "
         f"numpy={'on' if numpy_enabled() else 'off'})")


def test_correction_lookup_equivalence_under_load(benchmark):
    """Dense lookups on a long history stay identical to the seed lookup."""
    history = CorrectionHistory(0.0)
    for index in range(256):
        history.apply(0.25 * (index + 1), ((index % 7) - 3) * 1e-4, index)
    grid = sample_grid(0.0, 70.0, 2000)

    def lookup_all():
        return [history.correction_at(t) for t in grid]

    fast = benchmark(lookup_all)
    assert fast == [slowpath.seed_correction_at(history, t) for t in grid]
