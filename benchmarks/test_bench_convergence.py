"""E4 — Lemmas 9/10: the fault-tolerant midpoint halves the error each round.

The heart of the algorithm is ``mid(reduce(·))``.  Lemma 9 shows that the
adjustments of two nonfaulty processes compensate for the real-time difference
of their clocks reaching T^i with an error of about β/2 + 2ε, so the spread is
roughly halved at each round (plus a floor set by ε and drift).

We start the clocks spread over the full admissible β, run the maintenance
algorithm, and record the per-round real-time spread of round starts
(tmax^i − tmin^i).  This series is the paper's "figure": it must decay
geometrically (factor ≈ 1/2 per round) down to the 4ε + 4ρP floor.  We also
reproduce the same halving in the bare approximate-agreement setting the
averaging function came from (DLPSW).
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis import (
    format_paper_vs_measured,
    format_series,
    round_start_spreads,
    run_maintenance_scenario,
)
from repro.core import lemma9_compensation_error, steady_state_beta
from repro.multiset import (
    TwoFacedStrategy,
    midpoint_convergence_rate,
    run_approximate_agreement,
)

ROUNDS = 12


def test_round_spread_decays_to_steady_state(benchmark, bench_params):
    """Per-round spread decays from ~β towards the 4ε + 4ρP floor."""
    params = bench_params

    def measure():
        result = run_maintenance_scenario(params, rounds=ROUNDS, fault_kind="silent",
                                          seed=0)
        return round_start_spreads(result.trace)

    spreads = benchmark(measure)
    series = [spreads[i] for i in sorted(spreads)]
    floor = steady_state_beta(params)
    emit("E4 convergence — per-round real-time spread (figure series)",
         format_series("spread per round", series) + "\n" +
         format_paper_vs_measured([
             ("per-round compensation error (Lemma 9)",
              lemma9_compensation_error(params), max(series[1:])),
             ("steady-state floor 4eps+4rhoP", floor, series[-1]),
         ]))
    # Shape: the spread after the first update is at most the Lemma 9 error,
    # and the final spread sits at (or below) the steady-state floor.
    assert series[1] <= lemma9_compensation_error(params) + 1e-9
    assert series[-1] <= floor + 1e-9


def test_early_rounds_halve_the_spread(benchmark, bench_params):
    """While far from the floor, each round shrinks the spread by ~2x."""
    params = bench_params

    def measure():
        result = run_maintenance_scenario(params, rounds=6, fault_kind="two_faced",
                                          seed=9)
        return round_start_spreads(result.trace)

    spreads = benchmark(measure)
    series = [spreads[i] for i in sorted(spreads)]
    floor = steady_state_beta(params)
    emit("E4 convergence — halving while above the floor",
         format_series("spread per round", series))
    for before, after in zip(series, series[1:]):
        if before > 4 * floor:
            # Lemma 9: after ≈ before/2 + 2ε (+ drift terms).
            assert after <= before / 2.0 + 2 * params.epsilon + 1e-6


def test_approximate_agreement_substrate_halves(benchmark):
    """The DLPSW substrate itself converges by a factor ≥ 2 per round."""

    def measure():
        # The two-faced strategy (report the extremes to alternating halves of
        # the recipients) is the attack the reduce step exists for; unlike a
        # crude spoiler it keeps the correct values spread out, so the decay of
        # the diameter is visible round by round.
        return run_approximate_agreement(
            initial_values=[0.0, 0.1, 0.35, 0.6, 0.82, 0.9, 1.0],
            f=2, rounds=8, byzantine_ids=[5, 6], strategy=TwoFacedStrategy(),
        )

    outcome = benchmark(measure)
    rate = midpoint_convergence_rate()
    worst_factor = max((after / before
                        for before, after in zip(outcome.spreads, outcome.spreads[1:])
                        if before > 0), default=0.0)
    emit("E4 convergence — approximate agreement substrate",
         format_series("diameter per round", outcome.spreads) + "\n" +
         format_paper_vs_measured([
             ("per-round convergence rate (paper: 1/2)", rate, worst_factor),
         ]))
    for before, after in zip(outcome.spreads, outcome.spreads[1:]):
        assert after <= before * rate + 1e-12
