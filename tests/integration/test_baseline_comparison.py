"""Integration tests for the Section 10 comparison (experiment E8's shape).

The absolute numbers depend on the simulated hardware constants, but the
*shape* of the comparison reported in Section 10 should hold:

* the Welch-Lynch agreement is O(ε), independent of n;
* the [LM] interactive convergence agreement degrades as n grows (≈ 2nε);
* the unsynchronized control is the worst over long runs;
* message counts per round are n² for the fully-connected algorithms.
"""

import pytest

from repro.analysis import (
    default_parameters,
    measured_agreement,
    run_algorithm_scenario,
    run_comparison,
)
from repro.core import agreement_bound


class TestComparisonShape:
    def test_welch_lynch_beats_or_matches_lm_under_byzantine_attack(self, medium_params):
        rows = {row.algorithm: row
                for row in run_comparison(medium_params, rounds=8,
                                          algorithms=["welch_lynch",
                                                      "lamport_melliar_smith"],
                                          fault_kind="two_faced", seed=0)}
        assert rows["welch_lynch"].agreement <= rows["lamport_melliar_smith"].agreement * 1.5

    def test_welch_lynch_agreement_within_bound_in_comparison_harness(self, medium_params):
        rows = run_comparison(medium_params, rounds=8, algorithms=["welch_lynch"],
                              fault_kind="two_faced", seed=1)
        assert rows[0].agreement <= agreement_bound(medium_params)

    def test_all_synchronizers_beat_free_running_over_long_horizon(self):
        # Use higher drift so free-running clocks visibly diverge within the run.
        params = default_parameters(n=7, f=2, rho=2e-3, delta=0.01, epsilon=0.002)
        rounds = 10
        skews = {}
        for algorithm in ("welch_lynch", "lamport_melliar_smith",
                          "mahaney_schneider", "unsynchronized"):
            result = run_algorithm_scenario(algorithm, params, rounds=rounds,
                                            fault_kind="silent", seed=2)
            start = result.tmax0 + 2 * params.round_length
            skews[algorithm] = measured_agreement(result.trace, start,
                                                  result.end_time, samples=100)
        assert skews["welch_lynch"] < skews["unsynchronized"]
        assert skews["lamport_melliar_smith"] < skews["unsynchronized"]
        assert skews["mahaney_schneider"] < skews["unsynchronized"]

    def test_message_complexity_is_n_squared_for_averaging_algorithms(self, medium_params):
        rows = {row.algorithm: row
                for row in run_comparison(medium_params, rounds=6,
                                          algorithms=["welch_lynch",
                                                      "lamport_melliar_smith",
                                                      "unsynchronized"],
                                          fault_kind=None, seed=0)}
        n = medium_params.n
        assert rows["welch_lynch"].messages_per_round == pytest.approx(n * n)
        assert rows["lamport_melliar_smith"].messages_per_round == pytest.approx(n * n)
        assert rows["unsynchronized"].messages_per_round == 0.0

    def test_lm_agreement_degrades_with_n_while_welch_lynch_does_not(self):
        """The headline n-dependence difference of Section 10."""
        def measured(algorithm, n, f):
            params = default_parameters(n=n, f=f, rho=1e-4, delta=0.01,
                                        epsilon=0.002)
            result = run_algorithm_scenario(algorithm, params, rounds=8,
                                            fault_kind="two_faced", seed=3)
            start = result.tmax0 + 2 * params.round_length
            return measured_agreement(result.trace, start, result.end_time,
                                      samples=100)

        wl_small = measured("welch_lynch", 7, 2)
        wl_large = measured("welch_lynch", 13, 2)
        lm_small = measured("lamport_melliar_smith", 7, 2)
        lm_large = measured("lamport_melliar_smith", 13, 2)
        # Welch-Lynch stays flat (within noise); LM's ratio to WL grows with n.
        assert wl_large <= wl_small * 2.0
        assert (lm_large / wl_large) >= (lm_small / wl_small) * 0.9
