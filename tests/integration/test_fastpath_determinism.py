"""The fast path is bit-identical to the seed execution and metrics path.

Two guarantees are pinned here:

1. **Simulator**: the tuple-based event loop (``EventQueue.push_fields`` /
   the inlined ``System.run_until``) consumes the RNG in exactly the seed
   order and produces identical executions.  ``SeedPathSystem`` reconstructs
   the original loop — Message objects through ``push``/``pop``, per-call
   ``_dispatch``, deep-copied snapshot traces — and a seeded scenario run on
   both must agree on every adjustment, every local time, and every message
   counter.

2. **Metrics**: the indexed/vectorized reconstruction equals the frozen seed
   implementations (``repro.analysis.slowpath``) on the traces the real
   algorithms produce, faults and drops included.
"""

import pytest

from repro.analysis import default_parameters
from repro.analysis import slowpath
from repro.analysis.metrics import sample_grid
from repro.clocks import make_clock_ensemble
from repro.core.maintenance import WelchLynchProcess
from repro.faults.byzantine import TwoFacedClockAttacker
from repro.sim import ExecutionTrace, Message, System, UniformDelayModel
from repro.sim.network import ContentionDelayModel


class SeedPathSystem(System):
    """A System whose run loop is the seed implementation, verbatim."""

    def run_until(self, end_time, max_events=2_000_000):
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > end_time:
                break
            message = self._queue.pop()
            self._current_time = message.delivery_time
            self._dispatch(message)
            processed += 1
            if processed > max_events:
                raise RuntimeError("divergent")
        self._current_time = max(self._current_time, end_time)
        return self.trace()

    def trace(self):
        # The seed's deep-copied snapshot (copy=True) rather than the shared view.
        return ExecutionTrace(
            clocks=self._clocks,
            histories=self._histories,
            faulty_ids=self.faulty_ids(),
            events=self._events,
            stats=self._stats,
            end_time=self._current_time,
            copy=True,
        )

    def broadcast_from(self, sender, payload):
        # Seed shape: one post_message call stack per recipient.
        for recipient in range(self.n):
            self.post_message(sender, recipient, payload)

    def post_message(self, sender, recipient, payload):
        # Seed shape: wrap in a Message and push it (exercises push()/pop()).
        if recipient not in self._processes:
            raise KeyError(f"unknown recipient {recipient}")
        self._stats.record_send(sender)
        delivery_time = self._direct_delivery_time(sender, recipient)
        if delivery_time is None:
            self._stats.dropped += 1
            return
        from repro.sim.events import MessageKind
        self._queue.push(Message(kind=MessageKind.ORDINARY, sender=sender,
                                 recipient=recipient, payload=payload,
                                 send_time=self._current_time,
                                 delivery_time=delivery_time))


def _build(system_cls, params, rounds, delay_model, seed):
    processes = [WelchLynchProcess(params, max_rounds=rounds)
                 for _ in range(params.n - params.f)]
    processes += [TwoFacedClockAttacker(params, max_rounds=rounds + 2)
                  for _ in range(params.f)]
    clocks = make_clock_ensemble(params.n, rho=params.rho, beta=params.beta,
                                 seed=seed, kind="constant")
    system = system_cls(processes, clocks, delay_model=delay_model, seed=seed)
    system.schedule_all_starts_at_logical(params.initial_round_time)
    return system


@pytest.mark.parametrize("delay_factory", [
    lambda p: UniformDelayModel(p.delta, p.epsilon),
    # Drops + queue-state-dependent delays: stresses RNG consumption order.
    lambda p: ContentionDelayModel(p.delta, p.epsilon, window=0.004,
                                   threshold=2, drop_probability=0.3),
], ids=["uniform", "contention-with-drops"])
def test_fast_loop_matches_seed_loop(delay_factory):
    params = default_parameters(n=7, f=2)
    rounds = 6
    end = params.initial_round_time + (rounds + 1) * params.round_length

    old = _build(SeedPathSystem, params, rounds, delay_factory(params), seed=11)
    new = _build(System, params, rounds, delay_factory(params), seed=11)
    old_trace = old.run_until(end)
    new_trace = new.run_until(end)

    # Identical adjustments (RNG consumption and event ordering unchanged).
    for pid in range(params.n):
        assert new_trace.adjustments(pid) == old_trace.adjustments(pid)
        assert (new_trace.correction_history(pid).events
                == old_trace.correction_history(pid).events)

    # Identical local times over a dense grid.
    grid = sample_grid(0.0, end, 257)
    for pid in range(params.n):
        for t in grid[::16]:
            assert new_trace.local_time(pid, t) == old_trace.local_time(pid, t)
    assert new_trace.skew_series(grid) == old_trace.skew_series(grid)

    # Identical message statistics (Counter == dict compares by content).
    old_stats, new_stats = old_trace.stats, new_trace.stats
    assert (new_stats.sent, new_stats.delivered, new_stats.dropped,
            new_stats.timers_set, new_stats.timers_fired) == \
           (old_stats.sent, old_stats.delivered, old_stats.dropped,
            old_stats.timers_set, old_stats.timers_fired)
    assert dict(new_stats.per_process_sent) == dict(old_stats.per_process_sent)

    # Identical event logs.
    assert [(e.real_time, e.process_id, e.name, e.data)
            for e in new_trace.events] == \
           [(e.real_time, e.process_id, e.name, e.data)
            for e in old_trace.events]


def test_fast_metrics_match_seed_on_real_trace():
    params = default_parameters(n=7, f=2)
    system = _build(System, params, 6,
                    UniformDelayModel(params.delta, params.epsilon), seed=4)
    end = params.initial_round_time + 7 * params.round_length
    trace = system.run_until(end)
    grid = sample_grid(params.initial_round_time, end, 211)
    assert trace.skew_series(grid) == slowpath.seed_skew_series(trace, grid)
    assert trace.max_skew(grid) == slowpath.seed_max_skew(trace, grid)
    for t in grid[::10]:
        assert trace.local_times(t) == slowpath.seed_local_times(trace, t)


def test_shared_view_trace_tracks_continued_run():
    """run_until -> trace is a shared view; driving the system further is
    reflected, and the lazily indexed queries stay correct."""
    params = default_parameters(n=5, f=1)
    system = _build(System, params, 8,
                    UniformDelayModel(params.delta, params.epsilon), seed=2)
    mid = params.initial_round_time + 2 * params.round_length
    end = params.initial_round_time + 6 * params.round_length
    trace = system.run_until(mid)
    events_before = len(trace.events)
    adjustments_before = len(trace.adjustments(0))
    trace.max_skew(sample_grid(0.0, mid, 50))  # build the index early
    system.run_until(end)
    assert len(trace.events) > events_before
    assert len(trace.adjustments(0)) > adjustments_before
    # Index must refresh for the grown histories.
    grid = sample_grid(0.0, end, 101)
    assert trace.skew_series(grid) == slowpath.seed_skew_series(trace, grid)
    assert trace.events_named("broadcast")  # name index refreshes too
