"""Integration tests: the maintenance algorithm on non-complete topologies.

Covers the acceptance criteria of the topology subsystem:

* a ring run still audits clean against the Theorem 4/16/19 bounds (computed
  from the topology-effective (δ', ε') envelope);
* grid and random_gnp runs complete and audit;
* running with an explicit ``complete`` topology is bit-identical to running
  with no topology at all (the default path is the seed behavior);
* a partition-and-heal run demonstrates divergence while split and
  re-convergence inside the Lemma 20 halving envelope after healing.
"""

import pytest

from repro.analysis import (
    check_maintenance_run,
    check_partition_heal_run,
    default_parameters,
    divergence_series,
    get_workload,
    per_partition_agreement,
    run_maintenance_scenario,
    run_partition_heal_scenario,
    run_workload,
)
from repro.core.bounds import agreement_bound, startup_round_recurrence
from repro.topology import complete, grid, make_topology, random_gnp, ring


@pytest.fixture(scope="module")
def params():
    return default_parameters(n=7, f=2)


class TestRingMaintenance:
    def test_ring_run_audits_clean_against_theorem4_bounds(self, params):
        """The flagship criterion: a ring maintenance run, audited clean."""
        result = run_maintenance_scenario(params, rounds=8, fault_kind=None,
                                          topology=ring(7), seed=0)
        report = check_maintenance_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]
        # Theorem 4 claims specifically:
        assert report.check("theorem4a_adjustment").passed
        assert report.check("theorem4c_round_spread").passed

    def test_ring_effective_envelope_stretches_with_diameter(self, params):
        result = run_maintenance_scenario(params, rounds=4, fault_kind=None,
                                          topology=ring(7), seed=0)
        # diameter 3: envelope [δ-ε, 3(δ+ε)] centered -> δ' = (0.008+0.036)/2.
        assert result.params.delta == pytest.approx(0.022)
        assert result.params.epsilon == pytest.approx(0.014)
        # Relays actually happened (nodes at distance >= 2 exist on a ring).
        assert result.trace.stats.relayed > 0

    def test_feasible_round_length_is_preserved(self, params):
        """A caller-chosen P that still satisfies the Section 5.2 constraints
        for the stretched envelope is kept; an infeasible one is re-derived."""
        from repro.analysis import effective_parameters
        effective = effective_parameters(params, ring(7))
        assert effective.round_length == params.round_length  # 0.42 is feasible
        tight = default_parameters(n=7, f=2, round_length=0.1)
        stretched = effective_parameters(tight, ring(7))
        assert stretched.round_length != 0.1  # below the effective P_min (~0.29)
        assert stretched.is_feasible()

    def test_ring_survives_byzantine_faults(self, params):
        result = run_maintenance_scenario(params, rounds=8,
                                          fault_kind="two_faced",
                                          topology=ring(7), seed=0)
        report = check_maintenance_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]


class TestOtherTopologies:
    @pytest.mark.parametrize("factory", [grid, lambda n: random_gnp(n, p=0.4)])
    def test_runs_complete_and_audit(self, params, factory):
        result = run_maintenance_scenario(params, rounds=6, fault_kind=None,
                                          topology=factory(7), seed=0)
        report = check_maintenance_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]

    def test_workload_presets_audit(self):
        for name in ("ring-lan", "grid-lan", "sparse-lan"):
            result = run_workload(get_workload(name), rounds=6, seed=0)
            report = check_maintenance_run(result)
            assert report.all_passed, (name, [c.claim for c in report.failed()])


class TestDefaultPathBitIdentity:
    def test_explicit_complete_topology_matches_no_topology(self, params):
        """complete(n) routes every message directly with one RNG draw per
        message — exactly the no-topology code path, so the traces agree to
        the last bit."""
        plain = run_maintenance_scenario(params, rounds=5, fault_kind="two_faced",
                                         seed=3)
        routed = run_maintenance_scenario(params, rounds=5, fault_kind="two_faced",
                                          topology=complete(7), seed=3)
        times = [plain.tmax0 + 0.1 * k for k in range(40)]
        for t in times:
            assert plain.trace.local_times(t) == routed.trace.local_times(t)
        assert plain.trace.stats.sent == routed.trace.stats.sent
        assert plain.trace.stats.delivered == routed.trace.stats.delivered
        # And the parameters are untouched (no effective re-derivation).
        assert routed.params == params

    def test_default_runs_are_reproducible(self, params):
        a = run_maintenance_scenario(params, rounds=5, seed=11)
        b = run_maintenance_scenario(params, rounds=5, seed=11)
        grid_times = [a.tmax0 + 0.2 * k for k in range(20)]
        assert a.trace.skew_series(grid_times) == b.trace.skew_series(grid_times)


class TestPartitionAndHeal:
    @pytest.fixture(scope="class")
    def result(self):
        return run_partition_heal_scenario(default_parameters(n=7, f=2),
                                           rounds=16, partition_round=4,
                                           heal_round=12, seed=0)

    def test_full_audit_passes(self, result):
        report = check_partition_heal_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]

    def test_divergence_during_partition(self, result):
        """Cross-group divergence while split clearly exceeds healthy levels."""
        P = result.params.round_length
        during = max(d for _, d in divergence_series(
            result.trace, result.groups,
            result.partition_start + P, result.heal_time, samples=60))
        healed = min(d for _, d in divergence_series(
            result.trace, result.groups,
            result.heal_time + 2 * P, result.heal_time + 4 * P, samples=20))
        assert during > 2.0 * healed
        # Each side keeps agreement *internally* the whole time.
        internal = per_partition_agreement(
            result.trace, result.groups,
            result.partition_start + P, result.heal_time, samples=60)
        gamma = agreement_bound(result.params)
        assert all(skew <= gamma for skew in internal.values())

    def test_reconvergence_within_lemma20_envelope(self, result):
        """After healing, round-boundary skews obey the Lemma 20 recurrence
        and agreement is restored to the Theorem 16 bound."""
        P = result.params.round_length
        skews = [result.trace.skew(result.heal_time + k * P) for k in range(5)]
        for before, after in zip(skews, skews[1:]):
            assert after <= startup_round_recurrence(result.params, before) + 1e-9
        assert skews[-1] <= agreement_bound(result.params)

    def test_partition_drops_cross_messages_only(self, result):
        stats = result.trace.stats
        assert stats.unroutable > 0
        assert stats.dropped == stats.unroutable  # uniform delays never drop
        assert stats.delivered + stats.dropped == stats.sent

    def test_partition_heal_workload_preset(self):
        result = run_workload(get_workload("partition-heal"), rounds=10, seed=0)
        assert result.is_partition_heal
        report = check_partition_heal_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]

    def test_partition_on_clustered_topology(self):
        """Cutting a clustered graph along its bridges partitions for real."""
        from repro.topology import cluster_groups
        groups = cluster_groups(7, 2)
        topology = make_topology("clustered", 7, clusters=2, bridges=2)
        result = run_partition_heal_scenario(
            default_parameters(n=7, f=2), rounds=16, partition_round=4,
            heal_round=12, groups=groups, topology=topology, seed=0)
        assert result.trace.stats.unroutable > 0
        report = check_partition_heal_run(result)
        # Divergence and healing still audit on the sparse graph.
        for check in report.checks:
            if check.claim.startswith("lemma20") or check.claim == "healed_agreement":
                assert check.passed, check
