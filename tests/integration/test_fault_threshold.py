"""Integration tests around the n >= 3f + 1 resilience threshold (A2 / [DHS]).

With ``f`` actual Byzantine attackers and ``n = 3f + 1`` processes, the
algorithm keeps the clocks synchronized.  With the same attack but the
averaging configured for fewer faults than are present (or too few correct
processes), synchronization degrades — the impossibility result of [DHS] says
no algorithm without authentication can cope once a third or more of the
processes are faulty.
"""

import pytest

from repro.analysis import measured_agreement, run_maintenance_scenario
from repro.clocks import make_clock_ensemble
from repro.core import SyncParameters, WelchLynchProcess, agreement_bound
from repro.faults import TwoFacedClockAttacker
from repro.sim import System, UniformDelayModel


def agreement_of(result, params, settle=1):
    start = result.tmax0 + settle * params.round_length
    return measured_agreement(result.trace, start, result.end_time, samples=120)


class TestAtTheThreshold:
    def test_exactly_3f_plus_1_survives_f_attackers(self):
        params = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
        result = run_maintenance_scenario(params, rounds=8, fault_kind="two_faced",
                                          fault_count=2, seed=0)
        assert agreement_of(result, params) <= agreement_bound(params)

    def test_fewer_faults_than_f_also_fine(self):
        params = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
        result = run_maintenance_scenario(params, rounds=8, fault_kind="two_faced",
                                          fault_count=1, seed=0)
        assert agreement_of(result, params) <= agreement_bound(params)

    def test_parameter_validation_rejects_n_below_threshold(self):
        with pytest.raises(Exception):
            SyncParameters(n=6, f=2, rho=1e-4, delta=0.01, epsilon=0.002,
                           beta=0.01, round_length=1.0)


class TestBeyondTheThreshold:
    def _run_overloaded(self, attackers: int, configured_f: int, seed: int = 0):
        """n = 7 processes whose averaging tolerates ``configured_f`` faults,
        attacked by ``attackers`` coordinated two-faced adversaries."""
        params = SyncParameters.derive(n=7, f=configured_f, rho=1e-4, delta=0.01,
                                       epsilon=0.002)
        correct = [WelchLynchProcess(params, max_rounds=10)
                   for _ in range(7 - attackers)]
        byz = [TwoFacedClockAttacker(params, max_rounds=12) for _ in range(attackers)]
        processes = correct + byz
        clocks = make_clock_ensemble(7, rho=params.rho, beta=params.beta, seed=seed)
        system = System(processes, clocks,
                        delay_model=UniformDelayModel(params.delta, params.epsilon),
                        seed=seed)
        start_times = system.schedule_all_starts_at_logical(params.T0)
        end = params.T0 + 10 * params.round_length + 1.0
        trace = system.run_until(end)
        settle = min(t for pid, t in start_times.items() if pid < 7 - attackers) \
            + params.round_length
        grid = [settle + i * (end - settle) / 100 for i in range(101)]
        return params, trace.max_skew(grid)

    def test_attack_exceeding_configured_f_breaks_agreement(self):
        # 3 two-faced attackers against averaging configured for f=2: the
        # reduce step can no longer screen them all out, and the skew exceeds
        # the bound that held at the threshold.
        params, overloaded_skew = self._run_overloaded(attackers=3, configured_f=2)
        _, nominal_skew = self._run_overloaded(attackers=2, configured_f=2)
        assert nominal_skew <= agreement_bound(params)
        assert overloaded_skew > nominal_skew

    def test_graceful_configuration_with_higher_f_handles_more_attackers(self):
        # The same three attackers are harmless if n and f are sized for them.
        params = SyncParameters.derive(n=10, f=3, rho=1e-4, delta=0.01,
                                       epsilon=0.002)
        result = run_maintenance_scenario(params, rounds=8, fault_kind="two_faced",
                                          fault_count=3, seed=1)
        assert agreement_of(result, params) <= agreement_bound(params)
