"""Integration tests for parallel batch execution across the stack.

Covers the acceptance bar of the runner refactor: a 2-worker batch over a
multi-point workload is (a) bit-identical to serial execution per spec, for
every layer that now routes through the runner (sweeps, comparison,
replication), and (b) measurably faster than serial when at least two CPUs
are actually available.
"""

import time

import pytest

from repro.analysis import (
    default_parameters,
    run_comparison,
    sweep_topology,
)
from repro.runner import BatchRunner, RunSpec, available_parallelism, replicate

multicore = pytest.mark.skipif(
    available_parallelism() < 2,
    reason="speedup is only observable with 2+ usable CPUs")


class TestParallelParity:
    """jobs=2 must change wall-clock time only, never a single bit of output."""

    def test_topology_sweep_parity(self):
        kwargs = dict(n=7, rounds=4, seed=1)
        serial = sweep_topology(["complete", "ring", "star", "grid"], **kwargs)
        parallel = sweep_topology(["complete", "ring", "star", "grid"],
                                  jobs=2, **kwargs)
        assert serial.headers() == parallel.headers()
        assert serial.rows() == parallel.rows()

    def test_comparison_parity(self):
        params = default_parameters(n=7, f=2)
        kwargs = dict(rounds=4, algorithms=["welch_lynch", "srikanth_toueg",
                                            "marzullo", "unsynchronized"],
                      fault_kind="two_faced", seed=0)
        serial = run_comparison(params, **kwargs)
        parallel = run_comparison(params, jobs=2, **kwargs)
        assert serial == parallel

    def test_replication_parity(self):
        spec = RunSpec.maintenance(default_parameters(n=7, f=2), rounds=5)
        serial = replicate(spec, seeds=range(4), jobs=1)
        parallel = replicate(spec, seeds=range(4), jobs=2)
        assert serial.agreement_values == parallel.agreement_values
        assert serial.validity_values == parallel.validity_values
        for a, b in zip(serial.results, parallel.results):
            assert a.trace.events == b.trace.events


class TestParallelSpeedup:
    @multicore
    def test_two_workers_beat_serial_on_a_four_point_batch(self):
        # Four specs heavy enough (~150 ms each) that the compute dominates
        # the pool's fork/IPC overhead by a wide margin.
        params = default_parameters(n=13, f=4)
        specs = [RunSpec.maintenance(params, rounds=150, seed=seed)
                 for seed in range(4)]

        start = time.perf_counter()
        serial_results = BatchRunner(jobs=1).run(specs)
        serial_elapsed = time.perf_counter() - start

        start = time.perf_counter()
        parallel_results = BatchRunner(jobs=2, cache=False).run(specs)
        parallel_elapsed = time.perf_counter() - start

        # Bit-identical per-spec metrics no matter the worker count ...
        for a, b in zip(serial_results, parallel_results):
            assert a.trace.events == b.trace.events
            assert a.start_times == b.start_times
        # ... and measurably faster: with 2 workers the ideal is 0.5x serial;
        # 0.85x keeps the assertion robust on loaded CI machines while still
        # failing if the pool ever degenerates to serial execution.
        assert parallel_elapsed < serial_elapsed * 0.85, (
            f"jobs=2 took {parallel_elapsed:.2f}s vs serial "
            f"{serial_elapsed:.2f}s")
