"""Integration tests for the Section 9 extensions and Section 7 variants."""

import pytest

from repro.analysis import (
    measured_agreement,
    round_start_spreads,
    run_maintenance_scenario,
    run_reintegration_scenario,
    run_startup_scenario,
    startup_spread_series,
    steady_state_round_spread,
)
from repro.core import (
    FaultTolerantMean,
    agreement_bound,
    startup_limit,
    startup_round_recurrence,
)
from repro.faults import rejoin_time


class TestStartupThenSteadyState:
    def test_startup_converges_from_wild_initial_spread(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=10, initial_spread=2.0,
                                      seed=7)
        series = startup_spread_series(result.trace)
        assert series[0] > 0.5
        assert series[-1] <= startup_limit(medium_params)

    def test_startup_respects_lemma20_every_round(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=8, initial_spread=1.0,
                                      seed=9)
        series = startup_spread_series(result.trace)
        for before, after in zip(series, series[1:]):
            assert after <= startup_round_recurrence(medium_params, before) + 1e-9

    def test_startup_tolerates_byzantine_noise(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=8, initial_spread=1.0,
                                      fault_kind="random_noise", seed=3)
        series = startup_spread_series(result.trace)
        assert series[-1] < series[0] / 8


class TestReintegration:
    def test_repaired_process_rejoins_and_synchronizes(self, medium_params):
        params = medium_params
        result = run_reintegration_scenario(params, rounds=12,
                                            recover_after_rounds=4.5, seed=0)
        pid = params.n - 1
        when = rejoin_time(result.trace, pid)
        assert when is not None
        gamma = agreement_bound(params)
        check_from = when + params.round_length
        check_to = result.end_time - params.round_length
        for index in range(41):
            t = check_from + index * (check_to - check_from) / 40
            times = result.trace.local_times(t, include_faulty=True)
            spread = max(times.values()) - min(times.values())
            assert spread <= gamma + 1e-9

    def test_other_processes_unaffected_by_the_recovery(self, medium_params):
        params = medium_params
        result = run_reintegration_scenario(params, rounds=12,
                                            recover_after_rounds=4.5, seed=1)
        start = result.tmax0 + params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=100)
        assert skew <= agreement_bound(params)

    @pytest.mark.parametrize("recover_after", [2.3, 5.7, 8.1])
    def test_recovery_time_within_round_does_not_matter(self, medium_params,
                                                        recover_after):
        result = run_reintegration_scenario(medium_params, rounds=12,
                                            recover_after_rounds=recover_after,
                                            seed=2)
        assert rejoin_time(result.trace, medium_params.n - 1) is not None


class TestSection7Variants:
    def test_mean_variant_synchronizes_under_faults(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="two_faced",
                                          averaging=FaultTolerantMean(), seed=1)
        start = result.tmax0 + medium_params.round_length
        assert measured_agreement(result.trace, start, result.end_time) <= \
            agreement_bound(medium_params)

    def test_multi_exchange_tightens_steady_state_spread(self, medium_params):
        """More exchanges per round shrink the drift term of the spread.

        With the coarse simulated drift this is visible as a smaller (or at
        least not larger) steady-state per-round spread.
        """
        from repro.core import MultiExchangeProcess
        params = medium_params.with_round_length(
            MultiExchangeProcess(medium_params, 3).minimum_round_length() * 1.1)
        single = run_maintenance_scenario(params, rounds=5, fault_kind=None,
                                          exchanges_per_round=1, seed=6)
        multi = run_maintenance_scenario(params, rounds=5, fault_kind=None,
                                         exchanges_per_round=3, seed=6)
        start_s = single.tmax0 + 2 * params.round_length
        start_m = multi.tmax0 + 2 * params.round_length
        skew_single = measured_agreement(single.trace, start_s, single.end_time)
        skew_multi = measured_agreement(multi.trace, start_m, multi.end_time)
        assert skew_multi <= skew_single * 1.5 + 1e-4

    def test_staggered_broadcast_synchronizes_under_contention(self, medium_params):
        from repro.core import choose_stagger_interval
        from repro.sim import ContentionDelayModel
        params = medium_params
        contention = ContentionDelayModel(params.delta, params.epsilon,
                                          window=0.004, threshold=2,
                                          drop_probability=0.5)
        sigma = choose_stagger_interval(params, contention)
        result = run_maintenance_scenario(params, rounds=8, fault_kind=None,
                                          delay=contention, seed=2,
                                          stagger_interval=sigma)
        # With staggering the drop rate is modest and the clocks still converge.
        spreads = round_start_spreads(result.trace)
        last = max(spreads)
        assert spreads[last] <= params.beta + (params.n - 1) * sigma
