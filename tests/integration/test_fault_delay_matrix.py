"""Failure-injection matrix: every attacker family under every delay model.

Theorem 16 makes no assumption about *which* arbitrary behaviour the f faulty
processes exhibit, nor about where in the [δ−ε, δ+ε] envelope the delays
fall.  This matrix sweeps the cross product of the fault behaviours and the
delay models the library ships and checks the agreement and adjustment bounds
on every cell — the closest thing a simulation offers to the theorem's "for
all executions".
"""

import pytest

from repro.analysis import (
    adjustment_statistics,
    check_maintenance_run,
    measured_agreement,
    run_maintenance_scenario,
)
from repro.core import adjustment_bound, agreement_bound

FAULT_KINDS = ["silent", "omission", "crash", "two_faced", "skew_early",
               "skew_late", "random_noise"]
DELAY_KINDS = ["uniform", "fixed", "gaussian", "adversarial"]


class TestFaultDelayMatrix:
    @pytest.mark.parametrize("fault_kind", FAULT_KINDS)
    @pytest.mark.parametrize("delay", DELAY_KINDS)
    def test_agreement_and_adjustment_bounds_hold(self, medium_params, fault_kind,
                                                  delay):
        params = medium_params
        result = run_maintenance_scenario(params, rounds=6, fault_kind=fault_kind,
                                          delay=delay, seed=13)
        start = result.tmax0 + params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=80)
        stats = adjustment_statistics(result.trace)
        assert skew <= agreement_bound(params)
        assert stats.max_abs <= adjustment_bound(params)


class TestClockModelMatrix:
    @pytest.mark.parametrize("clock_kind", ["perfect", "constant", "piecewise",
                                            "sinusoidal", "walk"])
    def test_every_drift_model_passes_the_full_audit(self, medium_params,
                                                     clock_kind):
        result = run_maintenance_scenario(medium_params, rounds=6,
                                          fault_kind="two_faced",
                                          clock_kind=clock_kind, seed=17)
        report = check_maintenance_run(result)
        assert report.all_passed, [c.claim for c in report.failed()]


class TestLongerHorizonSoak:
    def test_thirty_rounds_under_attack_stay_within_bounds(self, medium_params):
        """A longer soak run: no slow drift of the error past the bound."""
        params = medium_params
        result = run_maintenance_scenario(params, rounds=30, fault_kind="two_faced",
                                          seed=19)
        report = check_maintenance_run(result, samples=400)
        assert report.all_passed, [c.claim for c in report.failed()]

    def test_agreement_does_not_degrade_over_time(self, medium_params):
        """The skew in the last third of a long run is no worse than in the middle."""
        params = medium_params
        result = run_maintenance_scenario(params, rounds=30, fault_kind="skew_late",
                                          seed=23)
        span = result.end_time - result.tmax0
        middle = measured_agreement(result.trace, result.tmax0 + span / 3,
                                    result.tmax0 + 2 * span / 3, samples=150)
        late = measured_agreement(result.trace, result.tmax0 + 2 * span / 3,
                                  result.end_time, samples=150)
        assert late <= middle * 1.5 + params.epsilon
