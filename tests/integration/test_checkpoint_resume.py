"""Integration tests: checkpoint/resume and the streaming runner path.

The headline guarantee: a run split at arbitrary snapshot points — with the
snapshot pickled, shipped, and restored — produces the *identical* trace and
metrics as an unsplit run, all the way up through the RunSpec layer.
"""

import pickle

import pytest

from repro.analysis import default_parameters
from repro.analysis.metrics import measured_agreement, validity_report
from repro.analysis.verification import check_maintenance_run
from repro.runner import BatchRunner, RunSpec, execute, replicate
from repro.sim import EventBudgetExceeded


def _fingerprint(result):
    trace = result.trace
    return (
        [(e.real_time, e.process_id, e.name, tuple(sorted(e.data.items())))
         for e in trace.events],
        {pid: tuple(trace.correction_history(pid).corrections)
         for pid in range(result.params.n)},
        (trace.stats.sent, trace.stats.delivered, trace.stats.dropped,
         trace.stats.timers_set, trace.stats.timers_fired),
    )


class TestCheckpointedRuns:
    def test_split_run_identical_to_unsplit(self, medium_params):
        plain = RunSpec.maintenance(medium_params, rounds=8, seed=13)
        unsplit = execute(plain)
        split = execute(plain.replace(checkpoint_every=0.61))
        assert split.checkpoints > 0
        assert _fingerprint(unsplit) == _fingerprint(split)
        # Metrics derived from the traces agree too.
        start = unsplit.tmax0 + medium_params.round_length
        assert measured_agreement(unsplit.trace, start, unsplit.end_time) \
            == measured_agreement(split.trace, start, split.end_time)
        report = check_maintenance_run(split)
        assert report.all_passed

    def test_checkpoint_period_choice_is_irrelevant(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=6, seed=3)
        fingerprints = [
            _fingerprint(execute(spec.replace(checkpoint_every=period)
                                 if period else spec))
            for period in (None, 0.3, 0.45, 1.7)
        ]
        assert all(fp == fingerprints[0] for fp in fingerprints[1:])

    def test_streaming_checkpointed_online_metrics_identical(self,
                                                             medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=10, seed=21,
                                   record_trace=False,
                                   observers=("skew", "validity"))
        direct = execute(spec)
        split = execute(spec.replace(checkpoint_every=0.5))
        assert split.checkpoints > 0
        assert direct.online("skew").max_skew == \
            split.online("skew").max_skew
        assert direct.online("validity").report() == \
            split.online("validity").report()

    def test_caller_held_observers_survive_checkpointing(self, medium_params):
        # restore() swaps in pickled observer copies; the final state must be
        # synced back into the objects the caller passed (and kept).
        from repro.analysis.experiments import run_maintenance_scenario
        from repro.sim import NetworkRecorder

        recorder = NetworkRecorder()
        result = run_maintenance_scenario(medium_params, rounds=6, seed=1,
                                          observers=[recorder],
                                          checkpoint_every=0.5)
        assert result.checkpoints > 0
        assert result.online("network") is recorder
        plain = NetworkRecorder()
        run_maintenance_scenario(medium_params, rounds=6, seed=1,
                                 observers=[plain])
        assert len(recorder.records) == len(plain.records)

    def test_snapshot_survives_bytes_roundtrip_midstream(self, medium_params):
        # Arbitrary split point chosen inside a round, driven by hand.
        from repro.analysis.experiments import (
            make_delay_model, run_maintenance_scenario)
        unsplit = run_maintenance_scenario(medium_params, rounds=5, seed=8)

        from repro.clocks.drift import make_clock_ensemble
        from repro.core.maintenance import WelchLynchProcess
        from repro.analysis.experiments import make_fault_process
        from repro.sim import System

        params = medium_params
        processes = [WelchLynchProcess(params, max_rounds=5)
                     for _ in range(params.n - params.f)]
        for index in range(params.f):
            processes.append(make_fault_process("two_faced", params, 5,
                                                seed=8 + index))
        clocks = make_clock_ensemble(params.n, rho=params.rho,
                                     beta=params.beta, seed=8,
                                     kind="constant")
        system = System(processes, clocks,
                        delay_model=make_delay_model("uniform", params),
                        seed=8)
        system.schedule_all_starts_at_logical(params.initial_round_time)
        system.run_until(unsplit.end_time * 0.53)
        blob = pickle.dumps(system.snapshot())
        trace = system.restore(pickle.loads(blob)).run_until(unsplit.end_time)
        assert [e.real_time for e in trace.events] == \
            [e.real_time for e in unsplit.trace.events]


class TestRunnerSurface:
    def test_streaming_spec_through_batch_runner(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=6, seed=0,
                                   record_trace=False,
                                   observers=("skew", "validity"))
        results = BatchRunner(jobs=1).run([spec, spec.with_seed(1)])
        for result in results:
            assert len(result.trace.events) == 0
            assert result.online("skew").max_skew > 0.0
            assert result.online("validity").report().holds

    def test_streaming_replication_uses_online_metrics(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=6,
                                   record_trace=False,
                                   observers=("skew", "validity"))
        rep = replicate(spec, seeds=[0, 1, 2])
        assert len(rep.agreement_values) == 3
        assert all(value > 0.0 for value in rep.agreement_values)
        assert rep.validity_holds

    def test_streaming_replication_requires_observers(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=6,
                                   record_trace=False, observers=("skew",))
        with pytest.raises(ValueError, match="observers"):
            replicate(spec, seeds=[0, 1])

    def test_budget_exceeded_surfaces_spec(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=6, seed=0,
                                   max_events=40)
        with pytest.raises(EventBudgetExceeded) as excinfo:
            execute(spec)
        err = excinfo.value
        assert err.spec == spec
        assert err.processed > err.max_events == 40
        assert "stream" not in err.spec.describe()

    def test_budget_totals_cover_checkpointed_segments(self, medium_params):
        # Segments run on the remaining budget, but the surfaced counts must
        # describe the whole run, not the segment that tripped.
        spec = RunSpec.maintenance(medium_params, rounds=6, seed=0,
                                   max_events=60, checkpoint_every=0.4)
        with pytest.raises(EventBudgetExceeded) as excinfo:
            execute(spec)
        err = excinfo.value
        assert err.max_events == 60
        assert err.processed > 60

    def test_observer_samples_override(self, medium_params):
        coarse = execute(RunSpec.maintenance(medium_params, rounds=5, seed=0,
                                             record_trace=False,
                                             observers=("skew", "validity")))
        fine = execute(RunSpec.maintenance(medium_params, rounds=5, seed=0,
                                           record_trace=False,
                                           observers=("skew", "validity"),
                                           samples=400))
        assert coarse.online("skew").samples == 200
        assert fine.online("skew").samples == 400
        assert fine.online("validity").report().samples > \
            coarse.online("validity").report().samples

    def test_partition_heal_workload_rejects_streaming_overrides(self):
        from repro.analysis.workloads import build_spec, get_workload

        workload = get_workload("partition-heal")
        with pytest.raises(ValueError, match="streaming"):
            build_spec(workload, record_trace=False,
                       observers=("skew", "validity"))
        with pytest.raises(ValueError, match="streaming"):
            build_spec(workload, checkpoint_every=1.0)

    def test_budget_exceeded_through_worker_pool(self, medium_params):
        # The exception must reconstruct across the multiprocessing boundary
        # with counts and spec intact.
        spec = RunSpec.maintenance(medium_params, rounds=6, seed=0,
                                   max_events=40)
        runner = BatchRunner(jobs=2, cache=False)
        with pytest.raises(EventBudgetExceeded) as excinfo:
            runner.run([spec, spec.with_seed(1)])
        assert excinfo.value.max_events == 40
        assert excinfo.value.spec is not None

    def test_streaming_fields_restricted_to_streaming_kinds(self,
                                                            medium_params):
        with pytest.raises(ValueError, match="streaming"):
            RunSpec.startup(medium_params).replace(record_trace=False)
        with pytest.raises(ValueError, match="streaming"):
            RunSpec.reintegration(medium_params).replace(horizon=100.0)

    def test_observer_names_validated(self, medium_params):
        with pytest.raises(ValueError, match="unknown observers"):
            RunSpec.maintenance(medium_params, observers=("nope",))

    def test_horizon_extends_the_run(self, medium_params):
        base = execute(RunSpec.maintenance(medium_params, rounds=4, seed=0))
        extended = execute(RunSpec.maintenance(medium_params, rounds=4,
                                               seed=0,
                                               horizon=base.end_time + 5.0))
        assert extended.end_time == base.end_time + 5.0

    def test_specs_hash_and_cache_with_streaming_fields(self, medium_params):
        spec = RunSpec.maintenance(medium_params, rounds=4,
                                   record_trace=False,
                                   observers=("skew", "validity"))
        runner = BatchRunner(jobs=1)
        runner.run([spec, spec])
        assert runner.cache_size == 1
        assert spec == spec.replace()
        assert spec != spec.replace(observers=("skew",))


class TestWorkloadPresets:
    def test_long_horizon_presets_stream_by_default(self):
        from repro.analysis.workloads import build_spec, get_workload

        for name in ("long-horizon-lan", "steady-state-wan"):
            workload = get_workload(name)
            assert workload.default_rounds >= 50
            spec = build_spec(workload)
            assert spec.rounds >= 50
            assert not spec.record_trace
            assert {"skew", "validity"} <= set(spec.observers)

    def test_long_horizon_lan_runs_bounded(self):
        from repro.analysis.workloads import build_spec, get_workload

        spec = build_spec(get_workload("long-horizon-lan"), n=7, f=2)
        result = execute(spec)
        assert result.rounds == 60
        assert len(result.trace.events) == 0
        assert result.online("skew").max_skew > 0.0
        assert result.online("validity").report().holds

    def test_preset_overrides_allow_recorded_runs(self):
        from repro.analysis.workloads import build_spec, get_workload

        spec = build_spec(get_workload("long-horizon-lan"), rounds=4,
                          record_trace=True, observers=())
        result = execute(spec)
        assert len(result.trace.events) > 0
