"""Integration tests for the telemetry layer across the stack.

The acceptance bar of the observability PR:

* **bit-identity** — an instrumented run produces exactly the trace an
  uninstrumented run does (telemetry reads wall clocks, never the RNG);
* **merge equality** — a ``BatchRunner(jobs=2)`` with telemetry reports the
  same counter totals and gauge high-waters as a serial run of the same
  batch;
* **manifests** — every executed spec leaves one JSON line, including
  budget-killed runs, and ``telemetry report`` renders the file;
* **CLI** — ``--telemetry --trace-out --manifest`` produce a loadable Chrome
  trace and a manifest the report subcommand accepts.
"""

import json

import pytest

from repro.analysis import default_parameters
from repro.cli import main
from repro.runner import BatchRunner, RunSpec, execute
from repro.sim import EventBudgetExceeded
from repro.telemetry import Telemetry, activated, read_manifests


def _specs(count=4, rounds=3):
    params = default_parameters(n=7, f=2)
    return [RunSpec.maintenance(params, rounds=rounds, seed=seed,
                                record_trace=True,
                                observers=("network",))
            for seed in range(count)]


def _fingerprint(result):
    trace = result.trace
    return ([(e.real_time, e.process_id, e.name) for e in trace.events],
            (trace.stats.sent, trace.stats.delivered, trace.stats.dropped,
             trace.stats.timers_set, trace.stats.timers_fired))


class TestBitIdentity:
    def test_instrumented_run_identical_to_plain(self):
        spec = _specs(count=1)[0]
        plain = execute(spec)
        instrumented = execute(spec, telemetry=Telemetry())
        assert _fingerprint(plain) == _fingerprint(instrumented)

    def test_active_telemetry_changes_nothing(self):
        spec = _specs(count=1)[0]
        plain = execute(spec)
        with activated(Telemetry()):
            ambient = execute(spec)
        assert _fingerprint(plain) == _fingerprint(ambient)


class TestMergeEquality:
    """Serial and jobs=2 batches must report identical metric totals."""

    def test_parallel_totals_equal_serial(self):
        specs = _specs()
        serial_tel = Telemetry()
        BatchRunner(jobs=1, cache=False, telemetry=serial_tel).run(specs)
        parallel_tel = Telemetry()
        BatchRunner(jobs=2, cache=False, telemetry=parallel_tel).run(specs)

        serial = serial_tel.registry.snapshot()
        parallel = parallel_tel.registry.snapshot()
        assert set(serial) == set(parallel)
        for name, state in serial.items():
            if state["kind"] == "counter":
                assert parallel[name]["value"] == state["value"], name
            elif state["kind"] == "gauge":
                # Gauge *currents* are last-run-vs-max (order-dependent);
                # the high-water mark is the well-defined aggregate.
                assert parallel[name]["high_water"] == \
                    state["high_water"], name
            else:
                assert parallel[name]["count"] == state["count"], name
        # Sanity: the counters actually measured the simulations.
        assert serial["runner.specs_executed"]["value"] == len(specs)
        assert serial["sim.events_dispatched"]["value"] > 0

    def test_manifests_collected_per_spec(self):
        specs = _specs()
        telemetry = Telemetry()
        BatchRunner(jobs=2, cache=False, telemetry=telemetry).run(specs)
        assert len(telemetry.manifests) == len(specs)
        hashes = {record["spec_hash"] for record in telemetry.manifests}
        assert len(hashes) == len(specs)
        for record in telemetry.manifests:
            assert record["outcome"] == "ok"
            assert record["events"] > 0
            assert record["network"]["sent"] > 0

    def test_cached_specs_measure_nothing(self):
        specs = _specs(count=2)
        telemetry = Telemetry()
        runner = BatchRunner(jobs=1, telemetry=telemetry)
        runner.run(specs)
        executed = telemetry.registry.value("runner.specs_executed")
        runner.run(specs)  # every spec cached: no new runs, no new metrics
        assert telemetry.registry.value("runner.specs_executed") == executed
        assert len(telemetry.manifests) == len(specs)


class TestBudgetExceeded:
    def test_metrics_snapshot_and_manifest_on_abort(self):
        spec = _specs(count=1)[0].replace(max_events=20)
        telemetry = Telemetry()
        with pytest.raises(EventBudgetExceeded) as excinfo:
            execute(spec, telemetry=telemetry)
        err = excinfo.value
        assert err.metrics is not None
        assert err.metrics["sim.events_dispatched"]["value"] == err.processed
        (record,) = telemetry.manifests
        assert record["outcome"] == "budget_exceeded"
        assert "budget" in record["error"]
        assert record["metrics"]["runner.budget_exceeded"]["value"] == 1


class TestCli:
    def test_run_telemetry_artifacts(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        manifest_path = tmp_path / "manifest.jsonl"
        status = main(["run", "--workload", "lan", "-n", "7", "--rounds", "3",
                       "--telemetry", "--trace-out", str(trace_path),
                       "--manifest", str(manifest_path)])
        assert status == 0
        captured = capsys.readouterr()
        assert "sim.events_dispatched" in captured.err
        # The Chrome trace loads and has the simulator span in it.
        trace = json.loads(trace_path.read_text())
        names = {event["name"] for event in trace["traceEvents"]}
        assert {"cli.run", "execute", "sim.run_until"} <= names
        assert all(event["ph"] == "X" for event in trace["traceEvents"])
        # The manifest line is complete.
        (record,) = read_manifests(str(manifest_path))
        assert record["outcome"] == "ok"
        assert record["kind"] == "maintenance"
        assert record["events"] > 0

    def test_track_memory_fills_manifest(self, tmp_path):
        manifest_path = tmp_path / "manifest.jsonl"
        status = main(["run", "--workload", "lan", "-n", "7", "--rounds", "3",
                       "--manifest", str(manifest_path), "--track-memory"])
        assert status == 0
        (record,) = read_manifests(str(manifest_path))
        assert record["peak_memory_bytes"] > 0

    def test_telemetry_report_renders(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifest.jsonl"
        for seed in ("0", "3"):
            assert main(["run", "--workload", "lan", "-n", "7",
                         "--rounds", "3", "--seed", seed,
                         "--manifest", str(manifest_path)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "report", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "runs: 2" in out
        assert "slowest cells:" in out
        assert "events/s:" in out

    def test_report_rejects_missing_file(self, tmp_path, capsys):
        status = main(["telemetry", "report", str(tmp_path / "absent.jsonl")])
        assert status == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_with_jobs_collects_manifests(self, tmp_path):
        manifest_path = tmp_path / "manifest.jsonl"
        status = main(["sweep", "--axis", "epsilon",
                       "--values", "0.001", "0.002", "--rounds", "3",
                       "--jobs", "2", "--manifest", str(manifest_path)])
        assert status == 0
        records = read_manifests(str(manifest_path))
        assert len(records) == 2
        assert all(record["outcome"] == "ok" for record in records)
