"""Integration tests for crash-safe, resumable sweeps.

The acceptance bar of the resilience layer: a sweep that loses workers to
SIGKILL, quarantines a poison spec and is interrupted midway must — after a
``--resume`` — produce a result set bit-identical to an uninterrupted serial
sweep, with the casualties visible in telemetry counters and the run
manifest.  Chaos schedules make the in-process paths deterministic; the
subprocess tests deliver a real SIGKILL/SIGTERM to a real sweep process.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.analysis import default_parameters
from repro.analysis.sweeps import SweepAxis, run_spec_sweep, sweep_epsilon
from repro.core.config import SyncParameters
from repro.runner import (
    ChaosFault,
    ChaosSchedule,
    ResilientRunner,
    ResultStore,
    RunSpec,
    SweepInterrupted,
)
from repro.telemetry import Telemetry

REPO_ROOT = Path(__file__).resolve().parents[2]

EPSILONS = [0.001, 0.002, 0.003, 0.004]

FAST = dict(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


def epsilon_sweep(runner=None, **kwargs):
    return sweep_epsilon(EPSILONS, n=4, f=1, rounds=3, runner=runner,
                         **kwargs)


class TestResilientSweepParity:
    def test_resilient_runner_matches_plain_sweep(self):
        plain = epsilon_sweep()
        resilient = epsilon_sweep(runner=ResilientRunner(jobs=2, cache=False,
                                                         **FAST))
        assert plain.headers() == resilient.headers()
        assert plain.rows() == resilient.rows()

    def test_quarantined_cell_reports_failed_runs(self):
        # Spec 1 fails every attempt: its cell loses its outputs and gains a
        # failed_runs column; the other cells are untouched.
        chaos = ChaosSchedule.single(1, "raise", attempts=10)
        runner = ResilientRunner(jobs=1, cache=False, chaos=chaos,
                                 max_retries=1, backoff_base=0.01)
        plain = epsilon_sweep()
        hit = epsilon_sweep(runner=runner)
        assert hit.points[1].outputs == {"failed_runs": 1.0}
        for i in (0, 2, 3):
            assert hit.points[i].outputs["agreement"] == \
                plain.points[i].outputs["agreement"]
        assert "failed_runs" in hit.output_names


class TestKillQuarantineInterruptResume:
    """The ISSUE acceptance scenario, end to end and deterministic."""

    def test_chaos_sweep_resumes_bit_identical(self, tmp_path):
        store_path = str(tmp_path / "sweep.sqlite")
        # Phase 1: the worker executing spec 0 is SIGKILLed once (the retry
        # succeeds), and the sweep is interrupted right before dispatching
        # spec 3 — the chaos stand-in for an operator kill midway.
        chaos = ChaosSchedule(faults=(
            ChaosFault(0, "kill", attempts=1),
            ChaosFault(3, "interrupt", attempts=1),
        ))
        telemetry = Telemetry()
        interrupted = ResilientRunner(jobs=1, cache=False, store=store_path,
                                      chaos=chaos, telemetry=telemetry,
                                      **FAST)
        with pytest.raises(SweepInterrupted) as excinfo:
            epsilon_sweep(runner=interrupted)
        # Spec 0's retry is parked behind fresh specs, so only 1 and 2
        # completed before the interrupt landed on spec 3.
        assert excinfo.value.completed == 2
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.crashes"]["value"] == 1.0
        assert snapshot["resilient.retries"]["value"] == 1.0
        with ResultStore(store_path) as store:
            assert len(store) == 2  # specs 1-2 survived the interrupt

        # Phase 2: resume, but the first missing spec now raises on every
        # attempt — it quarantines (counter + manifest + durable record)
        # while the sweep still completes, reporting the casualty.
        telemetry = Telemetry()
        poisoned = ResilientRunner(
            jobs=1, cache=False, store=store_path, resume=True,
            telemetry=telemetry, max_retries=1, backoff_base=0.01,
            chaos=ChaosSchedule.single(0, "raise", attempts=10))
        degraded = epsilon_sweep(runner=poisoned)
        assert degraded.points[0].outputs == {"failed_runs": 1.0}
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.quarantined"]["value"] == 1.0
        assert snapshot["resilient.store.hits"]["value"] == 2.0
        outcomes = [m["outcome"] for m in telemetry.manifests]
        assert outcomes.count("quarantined") == 1
        with ResultStore(store_path) as store:
            assert len(store.quarantined()) == 1

        # Phase 3: resume without chaos (the fault was environmental): the
        # quarantined spec re-runs, the stored specs are served as hits, and
        # the final table is bit-identical to an uninterrupted serial sweep.
        resumed = ResilientRunner(jobs=1, cache=False, store=store_path,
                                  resume=True, **FAST)
        clean = epsilon_sweep()
        recovered = epsilon_sweep(runner=resumed)
        assert recovered.headers() == clean.headers()
        assert recovered.rows() == clean.rows()
        with ResultStore(store_path) as store:
            assert len(store) == len(EPSILONS)
            assert store.quarantined() == []


def processes_mentioning(marker):
    """PIDs whose command line contains ``marker`` (Linux /proc scan)."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes()
        except OSError:  # pragma: no cover - process exited mid-scan
            continue
        if marker.encode() in cmdline:
            pids.append(int(entry.name))
    return pids


def wait_for_store(path, minimum, process, timeout=60.0):
    """Poll until the store holds ``minimum`` results (or the process exits)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            return False  # the sweep finished before we could interfere
        if os.path.exists(path):
            try:
                with ResultStore(path, create=False) as store:
                    if len(store) >= minimum:
                        return True
            except Exception:
                pass  # store mid-creation; retry
        time.sleep(0.02)
    raise TimeoutError(f"store {path} never reached {minimum} results")


class TestRealSignalsKillResume:
    """Deliver real signals to a real sweep process, then resume."""

    #: slow enough that the killer always wins the race with completion.
    SWEEP_ARGS = ["sweep", "--axis", "epsilon",
                  "--values", "0.001", "0.002", "0.003", "0.004", "0.005",
                  "--rounds", "12", "--replicate-seeds", "0", "1"]

    def spawn_sweep(self, store, csv):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro"] + self.SWEEP_ARGS
            + ["--store", store, "--csv", csv],
            cwd=str(REPO_ROOT), env=env,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE)

    def run_sweep(self, store, csv, resume=False):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        args = [sys.executable, "-m", "repro"] + self.SWEEP_ARGS \
            + ["--store", store, "--csv", csv]
        if resume:
            args.append("--resume")
        done = subprocess.run(args, cwd=str(REPO_ROOT), env=env,
                              capture_output=True, text=True, timeout=600)
        assert done.returncode == 0, done.stderr
        return Path(csv).read_text()

    def test_sigkill_midsweep_then_resume_is_bit_identical(self, tmp_path):
        store = str(tmp_path / "killed.sqlite")
        process = self.spawn_sweep(store, str(tmp_path / "never.csv"))
        try:
            interfered = wait_for_store(store, minimum=2, process=process)
            if not interfered:  # pragma: no cover - racy fast machine
                pytest.skip("sweep finished before SIGKILL could land")
            process.kill()  # the real thing: no handler, no cleanup
            process.wait(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        # The killed run left a consistent store with partial results.
        with ResultStore(store, create=False) as partial:
            survivors = len(partial)
        assert survivors >= 2
        # ...and no orphaned workers: a SIGKILLed parent cannot close the
        # pipe (the fork-inherited write end lives in the worker itself), so
        # idle workers poll for reparenting and exit on their own.
        if Path("/proc").exists():
            deadline = time.monotonic() + 15
            while processes_mentioning(store) and time.monotonic() < deadline:
                time.sleep(0.1)
            assert processes_mentioning(store) == [], \
                "SIGKILLed sweep leaked orphan worker processes"
        # Resume completes the sweep; a pristine run is the reference.
        clean_csv = self.run_sweep(str(tmp_path / "clean.sqlite"),
                                   str(tmp_path / "clean.csv"))
        resumed_csv = self.run_sweep(store, str(tmp_path / "resumed.csv"),
                                     resume=True)
        assert resumed_csv == clean_csv

    def test_sigterm_exits_130_and_resumes(self, tmp_path):
        store = str(tmp_path / "terminated.sqlite")
        process = self.spawn_sweep(store, str(tmp_path / "never.csv"))
        try:
            interfered = wait_for_store(store, minimum=1, process=process)
            if not interfered:  # pragma: no cover - racy fast machine
                pytest.skip("sweep finished before SIGTERM could land")
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=60)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup
                process.kill()
                process.wait()
        assert process.returncode == 130  # graceful, resumable exit
        stderr = process.stderr.read().decode()
        assert "rerun with --resume" in stderr
        clean_csv = self.run_sweep(str(tmp_path / "clean.sqlite"),
                                   str(tmp_path / "clean.csv"))
        resumed_csv = self.run_sweep(store, str(tmp_path / "resumed.csv"),
                                     resume=True)
        assert resumed_csv == clean_csv


class TestReplicatedResilientSweep:
    def test_replicated_sweep_with_store_roundtrips(self, tmp_path):
        params = default_parameters(n=4, f=1)

        def build(epsilon):
            derived = SyncParameters.derive(
                n=4, f=1, rho=params.rho, delta=params.delta, epsilon=epsilon)
            return RunSpec.maintenance(derived, rounds=3)

        def measure(result, epsilon):
            return {"end_time": result.end_time}

        axes = [SweepAxis("epsilon", [0.001, 0.002])]
        kwargs = dict(seeds=[0, 1, 2])
        plain = run_spec_sweep(axes, build, measure, **kwargs)
        store_path = str(tmp_path / "rep.sqlite")
        first = run_spec_sweep(
            axes, build, measure,
            runner=ResilientRunner(jobs=2, cache=False, store=store_path,
                                   **FAST),
            **kwargs)
        resumed = run_spec_sweep(
            axes, build, measure,
            runner=ResilientRunner(jobs=1, cache=False, store=store_path,
                                   resume=True, **FAST),
            **kwargs)
        assert first.rows() == plain.rows()
        assert resumed.rows() == plain.rows()
        with ResultStore(store_path) as store:
            assert len(store) == 6  # 2 epsilons x 3 seeds
