"""Integration tests: the paper's two correctness properties hold end-to-end.

These run the full stack (drift models + delay models + Byzantine adversaries
+ the maintenance algorithm) and check γ-agreement (Theorem 16) and
(α₁, α₂, α₃)-validity (Theorem 19) on the resulting traces.
"""

import pytest

from repro.analysis import (
    adjustment_statistics,
    measured_agreement,
    round_start_spreads,
    run_maintenance_scenario,
    validity_report,
)
from repro.core import adjustment_bound, agreement_bound, validity_parameters


def agreement_of(result, params, settle=1):
    start = result.tmax0 + settle * params.round_length
    return measured_agreement(result.trace, start, result.end_time, samples=150)


class TestTheorem16Agreement:
    def test_agreement_with_worst_case_fault_count(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=10,
                                          fault_kind="two_faced", seed=0)
        assert agreement_of(result, medium_params) <= agreement_bound(medium_params)

    @pytest.mark.parametrize("clock_kind", ["constant", "piecewise", "sinusoidal",
                                            "walk"])
    def test_agreement_across_drift_models(self, medium_params, clock_kind):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="skew_early",
                                          clock_kind=clock_kind, seed=3)
        assert agreement_of(result, medium_params) <= agreement_bound(medium_params)

    @pytest.mark.parametrize("delay", ["uniform", "fixed", "gaussian", "adversarial"])
    def test_agreement_across_delay_models(self, medium_params, delay):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="two_faced", delay=delay,
                                          seed=4)
        assert agreement_of(result, medium_params) <= agreement_bound(medium_params)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_agreement_over_seeds(self, medium_params, seed):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="two_faced", seed=seed)
        assert agreement_of(result, medium_params) <= agreement_bound(medium_params)

    def test_agreement_with_larger_system(self):
        from repro.analysis import default_parameters
        params = default_parameters(n=13, f=4)
        result = run_maintenance_scenario(params, rounds=6, fault_kind="two_faced",
                                          seed=1)
        assert agreement_of(result, params) <= agreement_bound(params)

    def test_round_spreads_stay_below_beta(self, medium_params):
        # Theorem 4(c): nonfaulty processes begin every round within beta.
        result = run_maintenance_scenario(medium_params, rounds=10,
                                          fault_kind="two_faced", seed=0)
        spreads = round_start_spreads(result.trace)
        assert all(value <= medium_params.beta + 1e-9 for value in spreads.values())

    def test_adjustments_stay_below_theorem4a_bound(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=10,
                                          fault_kind="skew_late", seed=2)
        assert adjustment_statistics(result.trace).max_abs <= \
            adjustment_bound(medium_params) + 1e-9


class TestTheorem19Validity:
    def test_validity_envelope_holds(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=10,
                                          fault_kind="two_faced", seed=0)
        report = validity_report(result.trace, medium_params,
                                 tmin0=result.tmin0, tmax0=result.tmax0,
                                 start=result.tmax0 + 0.01, end=result.end_time,
                                 samples=80)
        assert report.holds

    def test_rates_bounded_by_alphas(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=10,
                                          fault_kind="skew_early", seed=1)
        report = validity_report(result.trace, medium_params,
                                 tmin0=result.tmin0, tmax0=result.tmax0,
                                 start=result.tmax0 + 0.01, end=result.end_time,
                                 samples=50)
        vp = validity_parameters(medium_params)
        assert vp.alpha1 - 1e-6 <= report.min_rate
        assert report.max_rate <= vp.alpha2 + 1e-6

    def test_skew_attackers_cannot_run_clocks_away(self, medium_params):
        # A colluding "speed up" attack must not push the rate above alpha2.
        result = run_maintenance_scenario(medium_params, rounds=12,
                                          fault_kind="skew_early", seed=5)
        report = validity_report(result.trace, medium_params,
                                 tmin0=result.tmin0, tmax0=result.tmax0,
                                 start=result.tmax0 + 0.01, end=result.end_time,
                                 samples=50)
        assert report.holds
