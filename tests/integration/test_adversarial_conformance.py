"""Integration tests: the lower-bound certifier and the conformance matrix.

These carry the PR's acceptance criteria:

* for default LAN parameters at n ∈ {3, 5, 10}, the certifier produces a
  *verified* certificate whose achieved skew is at least 0.95·ε(1 − 1/n)
  (in fact ≥ the bound itself);
* the full conformance matrix (all 7 algorithms × 3 fault models) reports
  zero upper-bound violations on nonfaulty configurations and zero axiom
  violations anywhere;
* adversarial workloads run bit-identically serial vs ``jobs=2`` and via the
  streaming (``record_trace=False``) path, with the certifier consuming the
  online metrics.
"""

import os
import subprocess
import sys

import pytest

from repro.adversary import (
    certify_lower_bound,
    certify_run,
    run_conformance,
    verify_certificate,
)
from repro.analysis.experiments import default_parameters
from repro.analysis.metrics import measured_agreement
from repro.analysis.workloads import build_spec, get_workload
from repro.core.bounds import lower_bound, tightness_gap
from repro.runner import BatchRunner, RunSpec, execute


class TestCertifierAcceptance:
    @pytest.mark.parametrize("n", [3, 5, 10])
    def test_verified_certificate_reaches_the_bound(self, n):
        certificate = certify_lower_bound(n=n, rounds=5, seed=0)
        assert certificate.verified
        assert verify_certificate(certificate) == []
        # The acceptance floor is 0.95·ε(1 − 1/n); the chain construction
        # actually clears the bound itself with margin.
        assert certificate.achieved_skew >= 0.95 * certificate.bound
        assert certificate.meets_lower_bound
        params = default_parameters(n=n, f=0)
        assert certificate.bound == lower_bound(params)
        # Every shifted execution stays admissible and inside gamma.
        assert all(item.admissible for item in certificate.executions)
        assert certificate.achieved_skew <= certificate.gamma

    def test_certificates_position_inside_the_tightness_window(self):
        certificate = certify_lower_bound(n=5, rounds=5, seed=0)
        params = default_parameters(n=5, f=0)
        gap = tightness_gap(params, certificate.achieved_skew)
        assert gap.achieved_over_lower >= 1.0
        assert gap.achieved_over_gamma <= 1.0
        assert 0.0 <= gap.position <= 1.0


class TestConformanceAcceptance:
    def test_full_matrix_has_zero_violations(self):
        report = run_conformance(n=7, f=2, rounds=5, seed=0, jobs=1)
        algorithms = {o.case.algorithm for o in report.outcomes}
        fault_kinds = {o.case.fault_kind for o in report.outcomes}
        assert len(algorithms) >= 6 and len(fault_kinds) >= 3
        assert report.violations() == []
        assert report.passed
        # Axioms hold on every cell, faulty ones included.
        assert all(outcome.axioms_passed for outcome in report.outcomes)
        # Bounds hold on every nonfaulty cell.
        assert all(outcome.bounds_passed for outcome in report.outcomes
                   if outcome.case.nonfaulty)

    def test_matrix_under_adversarial_delays_still_conforms(self):
        """In-envelope adversaries cannot break any theorem bound."""
        report = run_conformance(n=5, f=1, rounds=4, seed=1,
                                 algorithms=["welch_lynch",
                                             "lamport_melliar_smith",
                                             "srikanth_toueg"],
                                 fault_kinds=[None], delay="per_pair")
        assert report.passed and report.violations() == []


class TestAdversarialBatchDeterminism:
    def _fingerprint(self, result):
        agreement = measured_agreement(result.trace, result.tmax0,
                                       result.end_time, samples=50)
        adjustments = tuple(tuple(result.trace.adjustments(pid))
                            for pid in result.trace.nonfaulty_ids)
        return (result.start_times, result.end_time,
                result.trace.stats.sent, result.trace.stats.delivered,
                agreement, adjustments)

    def test_adversarial_workloads_serial_vs_two_workers_bitwise(self):
        specs = [build_spec(get_workload(name), n=5, f=1, rounds=4, seed=seed)
                 for name in ("adversarial-lan", "tightness-sweep")
                 for seed in (0, 1)]
        serial = [execute(spec) for spec in specs]
        parallel = BatchRunner(jobs=2, cache=False).run(specs)
        for spec, a, b in zip(specs, serial, parallel):
            assert b.spec == spec
            assert self._fingerprint(a) == self._fingerprint(b)

    def test_round_aware_spec_is_replayable(self):
        params = default_parameters(n=5, f=1)
        spec = RunSpec.maintenance(params, rounds=4, fault_kind="two_faced",
                                   delay="round_aware", seed=3)
        assert self._fingerprint(execute(spec)) \
            == self._fingerprint(execute(spec))


class TestStreamingCertifier:
    def test_certifier_consumes_online_metrics(self):
        """A no-trace run certifies from online observers + bounded state."""
        params = default_parameters(n=5, f=0)
        base = RunSpec.maintenance(params, rounds=5, fault_kind=None,
                                   delay="fixed", seed=0)
        streaming = base.replace(record_trace=False,
                                 observers=("skew", "validity", "network"))
        batch_result = execute(base.replace(observers=("network",)))
        stream_result = execute(streaming)
        batch_cert = certify_run(batch_result)
        stream_cert = certify_run(stream_result)
        assert stream_cert.verified and stream_cert.meets_lower_bound
        # The certifier read the online skew envelope, not a trace replay.
        assert stream_cert.base_max_skew \
            == stream_result.online("skew").max_skew
        # Streaming and batch certify the *same* execution: identical chain,
        # shift quantum, evidence and achieved skew, bit for bit.
        assert stream_cert.chain == batch_cert.chain
        assert stream_cert.unit == batch_cert.unit
        assert stream_cert.executions == batch_cert.executions
        assert stream_cert.achieved_skew == batch_cert.achieved_skew

    def test_streaming_certify_lower_bound_entry_point(self):
        certificate = certify_lower_bound(n=4, rounds=4, seed=1,
                                          record_trace=False)
        assert certificate.verified and certificate.meets_lower_bound


class TestBothBackends:
    def test_certifier_is_backend_independent(self):
        """REPRO_NO_NUMPY=1 (pure-python TraceIndex) certifies identically."""
        code = ("from repro.adversary import certify_lower_bound\n"
                "cert = certify_lower_bound(n=4, rounds=4, seed=0)\n"
                "print(repr((cert.achieved_skew, cert.unit, cert.chain, "
                "cert.verified)))\n")
        env = dict(os.environ,
                   PYTHONPATH="src" + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        with_numpy = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=_repo_root(),
            capture_output=True, text=True, check=True)
        env["REPRO_NO_NUMPY"] = "1"
        without_numpy = subprocess.run(
            [sys.executable, "-c", code], env=env, cwd=_repo_root(),
            capture_output=True, text=True, check=True)
        assert with_numpy.stdout == without_numpy.stdout
        assert "True" in with_numpy.stdout


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
