"""Hypothesis guards for the adversarial delay models.

The contract every :mod:`repro.adversary.delays` model must keep for the
lower-bound machinery (and the conformance matrix) to be sound:

* **in-envelope** — every sample lies inside ``[δ−ε, δ+ε]`` and no message is
  ever dropped (the adversary attacks timing, not liveness);
* **deterministic** — the models never consume the RNG, so the same
  (sender, recipient, send_time) always yields the same delay regardless of
  the RNG handed in — this is what makes adversarial specs replayable;
* **pickle-stable** — a model shipped to a :class:`BatchRunner` worker
  produces bit-identical delays after the pickle round trip (the serial ==
  parallel guarantee for adversarial workloads rides on it).
"""

import pickle
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.delays import (
    PerPairBiasedDelayModel,
    RoundAwareDelayModel,
    SkewMaximizingDelayModel,
)

fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def models(draw):
    delta = draw(st.floats(min_value=1e-3, max_value=1.0, allow_nan=False))
    epsilon = delta * draw(st.floats(min_value=0.0, max_value=0.9,
                                     allow_nan=False))
    kind = draw(st.sampled_from(["per_pair", "skew_max", "round_aware"]))
    fraction = draw(fractions)
    if kind == "per_pair":
        return PerPairBiasedDelayModel(delta, epsilon, fraction=fraction)
    if kind == "skew_max":
        return SkewMaximizingDelayModel(delta, epsilon,
                                        pivot=draw(st.integers(1, 6)),
                                        fraction=fraction)
    return RoundAwareDelayModel(
        delta, epsilon,
        round_length=draw(st.floats(min_value=0.01, max_value=10.0,
                                    allow_nan=False)),
        initial_round_time=draw(st.floats(min_value=0.0, max_value=5.0,
                                          allow_nan=False)),
        period=draw(st.integers(1, 3)), fraction=fraction)


endpoints = st.integers(min_value=0, max_value=11)
send_times = st.floats(min_value=-10.0, max_value=100.0, allow_nan=False)


@given(model=models(), sender=endpoints, recipient=endpoints,
       send_time=send_times, rng_seed=st.integers(0, 2 ** 16))
@settings(max_examples=200, deadline=None)
def test_samples_stay_inside_the_envelope_and_never_drop(
        model, sender, recipient, send_time, rng_seed):
    delay = model.delay(sender, recipient, send_time,
                        random.Random(rng_seed))
    assert delay is not None
    assert delay > 0
    assert model.contains(delay)


@given(model=models(), sender=endpoints, recipient=endpoints,
       send_time=send_times,
       seed_a=st.integers(0, 2 ** 16), seed_b=st.integers(0, 2 ** 16))
@settings(max_examples=100, deadline=None)
def test_delays_are_deterministic_and_rng_independent(
        model, sender, recipient, send_time, seed_a, seed_b):
    rng_a, rng_b = random.Random(seed_a), random.Random(seed_b)
    first = model.delay(sender, recipient, send_time, rng_a)
    second = model.delay(sender, recipient, send_time, rng_b)
    assert first == second
    # The adversaries never consume entropy, so the RNG state is untouched —
    # a system using them draws exactly the same stream as with no model.
    assert rng_a.getstate() == random.Random(seed_a).getstate()


@given(model=models(), data=st.data())
@settings(max_examples=80, deadline=None)
def test_pickle_round_trip_is_bitwise_stable(model, data):
    clone = pickle.loads(pickle.dumps(model))
    assert repr(clone) == repr(model)
    rng = random.Random(0)
    for _ in range(8):
        sender = data.draw(endpoints)
        recipient = data.draw(endpoints)
        send_time = data.draw(send_times)
        assert (model.delay(sender, recipient, send_time, rng)
                == clone.delay(sender, recipient, send_time, rng))
