"""Hypothesis parity suite: the vectorized batch engine vs the serial loop.

The struct-of-arrays engine (:mod:`repro.sim.vectorized`) promises *bit
identity* with the serial event loop — not statistical agreement.  For random
vectorizable configurations (system size, fault mix, clock/delay family,
seeds) these properties compare every observable surface of the results:

* message statistics and per-process send counts;
* start times, end time, faulty sets;
* the full per-process correction histories (times, corrections, events);
* the online skew and validity observers, down to their internal sample
  points and capture tables.

The suite runs on both TraceIndex backends (the ``REPRO_NO_NUMPY`` toggle):
under the pure-python backend the engine reports itself unavailable and
``execute_batch`` must degrade to the serial loop, so parity is trivially
exact there too — the property then guards the fallback wiring.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import default_parameters
from repro.runner.spec import RunSpec, execute
from repro.sim import traceindex
from repro.sim.vectorized import (
    VECTOR_FAULT_KINDS,
    execute_batch,
    supports_spec,
    vectorized_available,
)

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.function_scoped_fixture])


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    """Run each property on both TraceIndex backends."""
    if request.param == "numpy" and not traceindex.numpy_available():
        pytest.skip("numpy not installed")
    previous = traceindex.numpy_enabled()
    traceindex.use_numpy(request.param == "numpy")
    yield request.param
    traceindex.use_numpy(previous)


@st.composite
def vector_specs(draw):
    """A random spec the engine claims to support, plus a seed batch."""
    f = draw(st.integers(min_value=0, max_value=2))
    tolerated = max(1, f)
    n = draw(st.integers(min_value=3 * tolerated + 1,
                         max_value=3 * tolerated + 2))
    params = default_parameters(n=n, f=tolerated)
    fault_kind = draw(st.sampled_from(sorted(VECTOR_FAULT_KINDS))) if f \
        else None
    spec = RunSpec.maintenance(
        params,
        rounds=draw(st.integers(min_value=1, max_value=4)),
        fault_kind=fault_kind,
        fault_count=f if f else None,
        clock_kind=draw(st.sampled_from(["constant", "perfect"])),
        delay=draw(st.sampled_from(["uniform", "fixed"])),
        record_trace=False,
        observers=draw(st.sampled_from(
            [("skew", "validity"), ("skew",), ()])),
    )
    base = draw(st.integers(min_value=0, max_value=2 ** 16))
    seeds = list(range(base, base + draw(st.integers(min_value=2,
                                                     max_value=5))))
    return spec, seeds


def _history_key(history):
    return (tuple(history.times), tuple(history.corrections),
            tuple((e.real_time, e.adjustment, e.new_correction, e.round_index)
                  for e in history.events))


def _assert_identical(spec, serial, vectorized):
    for a, b in zip(serial, vectorized):
        sa, sb = a.trace.stats, b.trace.stats
        assert (sa.sent, sa.delivered, sa.dropped, sa.timers_set,
                sa.timers_fired) == (sb.sent, sb.delivered, sb.dropped,
                                     sb.timers_set, sb.timers_fired)
        assert dict(sa.per_process_sent) == dict(sb.per_process_sent)
        assert a.start_times == b.start_times
        assert a.end_time == b.end_time
        assert a.trace.faulty_ids == b.trace.faulty_ids
        for pid in range(spec.params.n):
            assert _history_key(a.trace.correction_history(pid)) == \
                _history_key(b.trace.correction_history(pid))
        skew_a, skew_b = a.online("skew"), b.online("skew")
        assert (skew_a is None) == (skew_b is None)
        if skew_a is not None:
            assert skew_a.max_skew == skew_b.max_skew
            assert skew_a.samples == skew_b.samples
            assert skew_a._points == skew_b._points
        val_a, val_b = a.online("validity"), b.online("validity")
        assert (val_a is None) == (val_b is None)
        if val_a is not None:
            assert val_a.violations == val_b.violations
            assert val_a.samples == val_b.samples
            ra, rb = val_a.report(), val_b.report()
            assert (ra.min_rate, ra.max_rate, ra.samples, ra.violations) == \
                (rb.min_rate, rb.max_rate, rb.samples, rb.violations)
            assert val_a._captures == val_b._captures


class TestVectorizedParity:
    @SLOW
    @given(case=vector_specs())
    def test_batch_is_bit_identical_to_serial(self, backend, case):
        """execute_batch == [execute(s) for s] on every observable surface."""
        spec, seeds = case
        assert supports_spec(spec)
        serial = [execute(spec.with_seed(s)) for s in seeds]
        vectorized = execute_batch([spec.with_seed(s) for s in seeds])
        _assert_identical(spec, serial, vectorized)

    @SLOW
    @given(case=vector_specs())
    def test_engine_availability_tracks_backend(self, backend, case):
        """The engine is live exactly when the numpy backend is active."""
        assert vectorized_available() == (backend == "numpy")

    def test_larger_batch_smoke(self, backend):
        """One deterministic n=13, S=16 case beyond hypothesis' sizes."""
        params = default_parameters(n=13, f=4)
        spec = RunSpec.maintenance(params, rounds=5, fault_kind="two_faced",
                                   record_trace=False,
                                   observers=("skew", "validity"))
        seeds = list(range(16))
        serial = [execute(spec.with_seed(s)) for s in seeds]
        vectorized = execute_batch([spec.with_seed(s) for s in seeds])
        _assert_identical(spec, serial, vectorized)
