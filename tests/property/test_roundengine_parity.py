"""Hypothesis parity suite: the per-round large-n engine vs the serial loop.

The round engine (:mod:`repro.sim.roundengine`) promises *bit identity* with
the serial event loop — not statistical agreement.  For random supported
configurations (system size, topology, fault mix, clock/delay family, seed)
these properties compare every observable surface of the results:

* message statistics and per-process send counts;
* start times, end time, faulty sets;
* the full per-process correction histories (times, corrections, events);
* the online skew and validity observers, down to their internal sample
  points and capture tables.

Each engine-side run is telemetry-instrumented so the properties assert the
engine actually *ran* (``roundengine.rounds`` advanced, zero fallbacks) —
a silent serial fallback would make parity trivially true and test nothing.

The suite runs on both TraceIndex backends (the ``REPRO_NO_NUMPY`` toggle):
under the pure-python backend the engine reports itself unavailable and
``execute`` must degrade to the serial loop, so parity is trivially exact
there too — the property then guards the fallback wiring.  The same file
also pins the topology-index satellites: the memoized index cache (hits
counted in telemetry) and the ``delay_envelope`` fast path's equality with
the python route walk.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import default_parameters
from repro.runner.spec import RunSpec, execute
from repro.sim import roundengine, traceindex
from repro.telemetry import Telemetry
from repro.topology.generators import make_topology
from repro.topology.routing import delay_envelope

SLOW = settings(max_examples=10, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.function_scoped_fixture])

TOPOLOGIES = (None, "star", "grid", "complete", "hierarchy")


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    """Run each property on both TraceIndex backends."""
    if request.param == "numpy" and not traceindex.numpy_available():
        pytest.skip("numpy not installed")
    previous = traceindex.numpy_enabled()
    traceindex.use_numpy(request.param == "numpy")
    yield request.param
    traceindex.use_numpy(previous)


@st.composite
def engine_specs(draw):
    """A random spec the round engine claims to support."""
    f = draw(st.integers(min_value=0, max_value=2))
    tolerated = max(1, f)
    n = draw(st.integers(min_value=3 * tolerated + 1,
                         max_value=3 * tolerated + 3))
    params = default_parameters(n=n, f=tolerated)
    fault_kind = draw(st.sampled_from(
        sorted(roundengine.ROUND_FAULT_KINDS))) if f else None
    spec = RunSpec.maintenance(
        params,
        rounds=draw(st.integers(min_value=1, max_value=4)),
        fault_kind=fault_kind,
        fault_count=f if f else None,
        clock_kind=draw(st.sampled_from(["constant", "perfect"])),
        delay=draw(st.sampled_from(["uniform", "fixed"])),
        topology=draw(st.sampled_from(TOPOLOGIES)),
        seed=draw(st.integers(min_value=0, max_value=2 ** 16)),
        record_trace=False,
        observers=draw(st.sampled_from(
            [("skew", "validity"), ("skew",), ()])),
        round_engine=True,
    )
    return spec


def _history_key(history):
    return (tuple(history.times), tuple(history.corrections),
            tuple((e.real_time, e.adjustment, e.new_correction, e.round_index)
                  for e in history.events))


def _assert_identical(spec, a, b):
    sa, sb = a.trace.stats, b.trace.stats
    assert (sa.sent, sa.delivered, sa.dropped, sa.relayed, sa.timers_set,
            sa.timers_fired) == (sb.sent, sb.delivered, sb.dropped,
                                 sb.relayed, sb.timers_set, sb.timers_fired)
    assert dict(sa.per_process_sent) == dict(sb.per_process_sent)
    assert a.start_times == b.start_times
    assert a.end_time == b.end_time
    assert a.trace.faulty_ids == b.trace.faulty_ids
    for pid in range(spec.params.n):
        assert _history_key(a.trace.correction_history(pid)) == \
            _history_key(b.trace.correction_history(pid))
    skew_a, skew_b = a.online("skew"), b.online("skew")
    assert (skew_a is None) == (skew_b is None)
    if skew_a is not None:
        assert skew_a.max_skew == skew_b.max_skew
        assert skew_a.samples == skew_b.samples
        assert skew_a._points == skew_b._points
    val_a, val_b = a.online("validity"), b.online("validity")
    assert (val_a is None) == (val_b is None)
    if val_a is not None:
        assert val_a.violations == val_b.violations
        assert val_a.samples == val_b.samples
        ra, rb = val_a.report(), val_b.report()
        assert (ra.min_rate, ra.max_rate, ra.samples, ra.violations) == \
            (rb.min_rate, rb.max_rate, rb.samples, rb.violations)
        assert val_a._captures == val_b._captures


def _run_engine(spec, expect_engine):
    """Execute with telemetry; assert the round engine did (not) run.

    ``expect_engine`` is tri-state: ``True`` — the engine must complete every
    round with no fallback; ``False`` — it must never run; ``None`` — either
    a clean engine run or a counted whole-run fallback is acceptable (clock
    configurations that align logical clocks exactly, e.g. perfect rates
    over fixed delays, legitimately trip the tied-send-time guard).
    """
    telemetry = Telemetry()
    result = execute(spec, telemetry=telemetry)
    snapshot = telemetry.registry.snapshot()
    rounds = snapshot.get("roundengine.rounds", {}).get("value", 0.0)
    fallbacks = snapshot.get("roundengine.fallbacks", {}).get("value", 0.0)
    if expect_engine:
        assert rounds == spec.rounds and fallbacks == 0.0
    elif expect_engine is False:
        assert rounds == 0.0
    else:
        assert (rounds == spec.rounds and fallbacks == 0.0) \
            or (rounds == 0.0 and fallbacks >= 1.0)
    return result


class TestRoundEngineParity:
    @SLOW
    @given(spec=engine_specs())
    def test_engine_is_bit_identical_to_serial(self, backend, spec):
        """Engine run == serial run on every observable surface."""
        assert roundengine.supports_spec(spec)
        serial_spec = dataclasses.replace(spec, round_engine=False,
                                          vectorize=False)
        serial = execute(serial_spec)
        # Constant clocks (distinct random rates) must take the clean path;
        # perfect clocks can align logical clocks exactly after a correction
        # and legitimately trip the tied-send-time fallback — parity must
        # hold either way.
        if backend != "numpy":
            expect = False
        elif spec.clock_kind == "perfect":
            expect = None
        else:
            expect = True
        engine = _run_engine(spec, expect_engine=expect)
        _assert_identical(spec, serial, engine)

    @SLOW
    @given(spec=engine_specs())
    def test_engine_availability_tracks_backend(self, backend, spec):
        """The engine is live exactly when the numpy backend is active."""
        assert roundengine.roundengine_available() == (backend == "numpy")

    def test_kill_switch_falls_back_to_serial(self, backend):
        """use_round_engine(False) degrades to the serial loop, identically."""
        params = default_parameters(n=7, f=2)
        spec = RunSpec.maintenance(params, rounds=3, fault_kind="crash",
                                   fault_count=2, topology="star",
                                   record_trace=False,
                                   observers=("skew", "validity"),
                                   round_engine=True)
        reference = _run_engine(spec, expect_engine=(backend == "numpy"))
        roundengine.use_round_engine(False)
        try:
            assert not roundengine.should_use(spec)
            disabled = _run_engine(spec, expect_engine=False)
        finally:
            roundengine.use_round_engine(True)
        _assert_identical(spec, reference, disabled)

    def test_unexpected_error_degrades_to_serial(self, backend, monkeypatch):
        """A non-_Fallback engine crash takes the serial path, counted.

        The docstring contract is that try_execute never escapes: unexpected
        numpy errors from the index build or the engine are absorbed into
        ``roundengine.errors`` (plus the usual fallback count) and the serial
        reference result comes back unchanged.
        """
        if backend == "python":
            pytest.skip("engine needs the numpy backend")
        params = default_parameters(n=7, f=2)
        spec = RunSpec.maintenance(params, rounds=3, fault_kind="crash",
                                   fault_count=2, topology="star",
                                   record_trace=False,
                                   observers=("skew", "validity"),
                                   round_engine=True)
        serial = execute(dataclasses.replace(spec, round_engine=False,
                                             vectorize=False))

        def boom(self):
            raise RuntimeError("injected engine failure")

        monkeypatch.setattr(roundengine.RoundSystem, "run", boom)
        telemetry = Telemetry()
        result = execute(spec, telemetry=telemetry)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["roundengine.errors"]["value"] == 1.0
        assert snapshot["roundengine.fallbacks"]["value"] == 1.0
        assert snapshot.get("roundengine.rounds", {}).get("value", 0.0) == 0.0
        _assert_identical(spec, serial, result)

    def test_larger_run_smoke(self, backend):
        """One deterministic n=40 hierarchy case beyond hypothesis' sizes."""
        params = default_parameters(n=40, f=3)
        spec = RunSpec.maintenance(params, rounds=6, fault_kind="silent",
                                   fault_count=3, topology="hierarchy",
                                   record_trace=False,
                                   observers=("skew", "validity"),
                                   round_engine=True)
        serial = execute(dataclasses.replace(spec, round_engine=False,
                                             vectorize=False))
        engine = _run_engine(spec, expect_engine=(backend == "numpy"))
        _assert_identical(spec, serial, engine)


class TestTopologyIndex:
    def test_index_memoized_with_telemetry_counter(self, backend):
        """Repeat access returns the same index and counts a cache hit."""
        from repro.telemetry import activated
        from repro.topology.index import maybe_index

        topology = make_topology("grid", 12)
        if backend == "python":
            assert maybe_index(topology) is None
            return
        telemetry = Telemetry()
        with activated(telemetry):
            first = maybe_index(topology)
            second = maybe_index(topology)
        assert first is not None and first is second
        hits = telemetry.registry.snapshot().get(
            "topology.index_cache_hits", {}).get("value", 0.0)
        assert hits >= 1.0

    def test_equal_topologies_share_index(self, backend):
        """The equality-keyed LRU serves rebuilt-but-equal topologies."""
        from repro.topology.index import maybe_index

        if backend == "python":
            pytest.skip("index needs the numpy backend")
        first = maybe_index(make_topology("star", 9))
        second = maybe_index(make_topology("star", 9))
        assert first is not None and first is second

    @pytest.mark.parametrize("kind,n", [("complete", 8), ("star", 9),
                                        ("grid", 12), ("ring", 7),
                                        ("hierarchy", 23),
                                        ("clustered", 10)])
    def test_delay_envelope_fast_path_matches_walk(self, backend, kind, n):
        """The index fast path equals the python route walk bit for bit."""
        topology = make_topology(kind, n)
        envelope = delay_envelope(topology, delta=0.01, epsilon=0.002)
        previous = traceindex.numpy_enabled()
        traceindex.use_numpy(False)  # forces the python route walk
        try:
            reference = delay_envelope(topology, delta=0.01, epsilon=0.002)
        finally:
            traceindex.use_numpy(previous)
        assert envelope == reference

    def test_delay_envelope_extra_delays_use_walk(self, backend):
        """Per-link extras disable the fast path and stay exact."""
        from repro.topology.base import Topology

        ring = make_topology("ring", 6)
        topology = Topology(6, ring.links(), name="ring",
                            extra_delay={(0, 1): 0.005})
        envelope = delay_envelope(topology, delta=0.01, epsilon=0.002)
        assert envelope[1] >= 3 * 0.012  # the 3-hop route through the extra

    def test_trailing_isolated_node_matches_python_walk(self, backend):
        """Regression: an isolated highest-numbered node crashed the BFS.

        Such nodes leave ``len(indices)`` in the reduceat offsets; the index
        must pad rather than clip (clipping truncates the previous node's
        neighbor segment), staying exactly equal to the python walk.
        """
        from repro.topology.generators import random_gnp
        from repro.topology.index import maybe_index

        for seed in range(8):
            topology = random_gnp(6, p=0.2, seed=seed, connect=False)
            reference = 0
            for source in range(topology.n):
                distances = topology.hop_distances(source)
                reference = max(reference, max(distances.values()))
            assert topology.diameter() == reference
            index = maybe_index(topology)
            if backend == "python":
                assert index is None
                continue
            rows = index.dist_rows(list(range(topology.n)))
            for source in range(topology.n):
                distances = topology.hop_distances(source)
                for node in range(topology.n):
                    assert rows[source][node] == distances.get(node, -1)

    def test_distance_arrays_are_int32(self, backend):
        """Regression: int16 hop levels overflow (OverflowError on numpy 2.x)
        once a diameter exceeds 32767 — inside the module's 10^4–10^5 target
        scale for line/ring shapes."""
        from repro.topology.index import maybe_index

        if backend == "python":
            pytest.skip("index needs the numpy backend")
        index = maybe_index(make_topology("ring", 9))
        assert index._dist.dtype.name == "int32"
        assert index.dist_rows([0, 4]).dtype.name == "int32"
        complete = maybe_index(make_topology("complete", 5))
        assert complete.dist_rows([1]).dtype.name == "int32"

    def test_hierarchy_shape(self):
        """The new generator: connected star-of-stars with diameter 4."""
        topology = make_topology("hierarchy", 50)
        assert topology.n == 50
        assert topology.is_connected()
        assert topology.diameter() == 4
        hubs = make_topology("hierarchy", 50, hubs=3)
        assert len(hubs.neighbors(0)) == 3
