"""Property-based tests for the fault-tolerant averaging function and agreement.

These are the invariants that make the clock algorithm work (Lemma 6 and the
halving property of Lemma 24): no matter what ``f`` Byzantine values are
injected, the fault-tolerant average stays inside the honest range, and two
parties that see the same honest values (each within ``x``) compute averages
within ``diam/2 + 2x`` of each other.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FaultTolerantMean, FaultTolerantMidpoint
from repro.multiset import run_approximate_agreement

honest_values = st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                         min_size=5, max_size=9)
bogus_values = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestLemma6Property:
    """The average always lies within the range of the honest values."""

    @settings(max_examples=100)
    @given(honest_values, st.lists(bogus_values, min_size=0, max_size=2))
    def test_midpoint_stays_in_honest_range(self, honest, bogus):
        f = 2
        values = honest + bogus + [honest[0]] * (2 - len(bogus))  # keep |bogus| <= f
        result = FaultTolerantMidpoint().average(values, f)
        assert min(honest) - 1e-9 <= result <= max(honest) + 1e-9

    @settings(max_examples=100)
    @given(honest_values, st.lists(bogus_values, min_size=0, max_size=2))
    def test_mean_stays_in_honest_range(self, honest, bogus):
        f = 2
        values = honest + bogus + [honest[0]] * (2 - len(bogus))
        result = FaultTolerantMean().average(values, f)
        assert min(honest) - 1e-9 <= result <= max(honest) + 1e-9


class TestHalvingProperty:
    """Lemma 24 / Lemma 9: two honest observers end up within diam/2 + 2x."""

    @settings(max_examples=60)
    @given(honest_values,
           st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
           st.data())
    def test_two_observers_converge(self, honest, x, data):
        f = 2
        n = len(honest) + f
        perturb = st.floats(min_value=-x, max_value=x, allow_nan=False)
        bogus = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
        u = [h + data.draw(perturb) for h in honest] + \
            [data.draw(bogus) for _ in range(f)]
        v = [h + data.draw(perturb) for h in honest] + \
            [data.draw(bogus) for _ in range(f)]
        averager = FaultTolerantMidpoint()
        diff = abs(averager.average(u, f) - averager.average(v, f))
        diam = max(honest) - min(honest)
        assert diff <= diam / 2.0 + 2 * x + 1e-6


class TestApproximateAgreementProperties:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=4, max_size=10),
           st.integers(min_value=1, max_value=6))
    def test_spread_never_increases_without_faults(self, initial, rounds):
        result = run_approximate_agreement(initial, f=1, rounds=rounds)
        for before, after in zip(result.spreads, result.spreads[1:]):
            assert after <= before + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=7, max_size=10),
           st.integers(min_value=0, max_value=1))
    def test_final_values_inside_initial_range_with_faults(self, initial, byz_choice):
        byzantine = [len(initial) - 1] if byz_choice else []
        correct = [v for i, v in enumerate(initial) if i not in byzantine]
        result = run_approximate_agreement(initial, f=2, rounds=3,
                                           byzantine_ids=byzantine)
        for value in result.final_values.values():
            assert min(correct) - 1e-9 <= value <= max(correct) + 1e-9
