"""Hypothesis guards for the streaming pipeline's bit-identical guarantees.

Two families of properties:

* **online == batch** — for random scenario configurations (system size,
  fault mix, drift model, delay family, seed) and random sample grids, the
  streaming observers must return exactly the floats the batch metrics
  compute from the recorded trace — on both the numpy and the pure-python
  TraceIndex backends;
* **checkpoint invariance** — splitting a random run at a random period must
  leave the trace, the corrections, and the online metrics bit-identical.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.experiments import run_maintenance_scenario
from repro.analysis.metrics import (
    measured_agreement,
    sample_grid,
    skew_series,
    validity_report,
)
from repro.analysis.online import OnlineSkew, OnlineValidity, build_observers
from repro.core.config import SyncParameters
from repro.sim import traceindex

SLOW = settings(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow,
                                       HealthCheck.function_scoped_fixture])


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    """Run each property on both the numpy and the pure-python backend."""
    if request.param == "numpy" and not traceindex.numpy_available():
        pytest.skip("numpy not installed")
    previous = traceindex.numpy_enabled()
    traceindex.use_numpy(request.param == "numpy")
    yield request.param
    traceindex.use_numpy(previous)


@st.composite
def scenario_configs(draw):
    """A small but varied maintenance-scenario configuration."""
    f = draw(st.integers(min_value=0, max_value=2))
    tolerated = max(1, f)  # the parameter set must tolerate at least one
    n = draw(st.integers(min_value=3 * tolerated + 1,
                         max_value=3 * tolerated + 2))
    params = SyncParameters.derive(n=n, f=tolerated, rho=1e-4, delta=0.01,
                                   epsilon=0.002)
    return {
        "params": params,
        "fault_kind": draw(st.sampled_from(
            [None, "silent", "two_faced", "random_noise"])) if f else None,
        "fault_count": f if f else None,
        "clock_kind": draw(st.sampled_from(
            ["perfect", "constant", "piecewise", "sinusoidal", "walk"])),
        "delay": draw(st.sampled_from(["uniform", "fixed", "gaussian",
                                       "adversarial"])),
        "seed": draw(st.integers(min_value=0, max_value=2 ** 16)),
        "rounds": draw(st.integers(min_value=2, max_value=4)),
    }


def _run(config, observers):
    return run_maintenance_scenario(
        config["params"], rounds=config["rounds"],
        fault_kind=config["fault_kind"], fault_count=config["fault_count"],
        clock_kind=config["clock_kind"], delay=config["delay"],
        seed=config["seed"], observers=observers)


class TestOnlineEqualsBatch:
    @SLOW
    @given(config=scenario_configs(),
           samples=st.integers(min_value=5, max_value=120))
    def test_skew_envelope_and_series(self, backend, config, samples):
        captured = {}

        def factory(system, starts, end, params):
            faulty = set(system.faulty_ids())
            times = [t for pid, t in starts.items() if pid not in faulty]
            start = (max(times) if times else 0.0) + params.round_length
            grid = sample_grid(start, end, max(2, samples))
            captured["grid"] = grid
            captured["window"] = (start, end)
            return [OnlineSkew(grid, keep_series=True)]

        result = _run(config, factory)
        observer = result.observers["skew"]
        assert observer.max_skew == result.trace.max_skew(captured["grid"])
        assert observer.series() == result.trace.skew_series(captured["grid"])

    @SLOW
    @given(config=scenario_configs())
    def test_validity_report(self, backend, config):
        def factory(system, starts, end, params):
            return build_observers(("validity",), system, params, starts,
                                   end)

        result = _run(config, factory)
        start = result.tmax0 + result.params.round_length
        batch = validity_report(result.trace, result.params, result.tmin0,
                                result.tmax0, start, result.end_time,
                                samples=100)
        assert result.observers["validity"].report() == batch

    @SLOW
    @given(config=scenario_configs())
    def test_full_audit_window_agreement(self, backend, config):
        def factory(system, starts, end, params):
            return build_observers(("skew",), system, params, starts, end)

        result = _run(config, factory)
        start = result.tmax0 + result.params.round_length
        assert result.observers["skew"].max_skew == measured_agreement(
            result.trace, start, result.end_time, samples=200)


class TestCheckpointInvariance:
    @SLOW
    @given(config=scenario_configs(),
           period=st.floats(min_value=0.05, max_value=2.0,
                            allow_nan=False))
    def test_checkpointed_run_identical(self, config, period):
        plain = _run(config, None)
        split = run_maintenance_scenario(
            config["params"], rounds=config["rounds"],
            fault_kind=config["fault_kind"],
            fault_count=config["fault_count"],
            clock_kind=config["clock_kind"], delay=config["delay"],
            seed=config["seed"], checkpoint_every=period)
        assert [(e.real_time, e.process_id, e.name)
                for e in plain.trace.events] == \
            [(e.real_time, e.process_id, e.name)
             for e in split.trace.events]
        for pid in range(config["params"].n):
            assert (tuple(plain.trace.correction_history(pid).corrections)
                    == tuple(split.trace.correction_history(pid).corrections))
        assert plain.trace.stats.sent == split.trace.stats.sent
