"""Property-based tests for the simulator substrate.

The execution semantics of Section 2.3 must hold for *every* run, whatever
the delays, seeds and parameters; hypothesis drives the simulator across a
range of them and checks:

* determinism — the same seed reproduces exactly the same local times (the
  property every experiment in the repository relies on);
* the event-queue ordering rule (property 4: timers after ordinary messages
  at the same delivery time, FIFO otherwise);
* assumption A3 — every delivered message's delay stays inside the
  [δ−ε, δ+ε] envelope for the in-spec delay models, on real runs;
* the agreement bound itself on randomly drawn (seed, fault mix) workloads —
  a randomized miniature of the benchmark suite.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import measured_agreement, run_maintenance_scenario
from repro.core import SyncParameters, agreement_bound
from repro.sim import (
    EventQueue,
    Message,
    MessageKind,
    RecordingDelayModel,
    UniformDelayModel,
    envelope_violations,
)

PARAMS = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


class TestEventQueueProperties:
    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=100.0,
                                        allow_nan=False),
                              st.booleans()),
                    min_size=1, max_size=60))
    def test_pops_are_time_ordered_with_timers_last(self, entries):
        queue = EventQueue()
        for delivery_time, is_timer in entries:
            kind = MessageKind.TIMER if is_timer else MessageKind.ORDINARY
            queue.push(Message(kind=kind, sender=0, recipient=0, payload=None,
                               send_time=0.0, delivery_time=delivery_time))
        popped = []
        while queue:
            popped.append(queue.pop())
        times = [message.delivery_time for message in popped]
        assert times == sorted(times)
        # Property 4: at any given delivery time, no ordinary message follows a
        # timer.
        for first, second in zip(popped, popped[1:]):
            if first.delivery_time == second.delivery_time:
                assert not (first.is_timer() and not second.is_timer())

    @given(st.lists(st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                    min_size=1, max_size=40))
    def test_same_time_ordinary_messages_stay_fifo(self, times):
        queue = EventQueue()
        for index, _ in enumerate(times):
            queue.push(Message(kind=MessageKind.ORDINARY, sender=index, recipient=0,
                               payload=index, send_time=0.0, delivery_time=1.0))
        payloads = [queue.pop().payload for _ in range(len(times))]
        assert payloads == sorted(payloads)


class TestRunProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_runs_are_deterministic_given_the_seed(self, seed):
        first = run_maintenance_scenario(PARAMS, rounds=4, fault_kind="two_faced",
                                         seed=seed)
        second = run_maintenance_scenario(PARAMS, rounds=4, fault_kind="two_faced",
                                          seed=seed)
        probe_times = [first.tmax0 + i * 0.3 for i in range(6)]
        for t in probe_times:
            assert first.trace.local_times(t) == second.trace.local_times(t)
        assert first.trace.stats.sent == second.trace.stats.sent

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_every_delivered_delay_respects_assumption_a3(self, seed):
        recording = RecordingDelayModel(UniformDelayModel(PARAMS.delta,
                                                          PARAMS.epsilon))
        run_maintenance_scenario(PARAMS, rounds=3, fault_kind="two_faced",
                                 delay=recording, seed=seed)
        assert envelope_violations(recording.records, PARAMS.delta,
                                   PARAMS.epsilon) == []

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.sampled_from(["silent", "two_faced", "skew_early", "skew_late",
                            "random_noise", "omission"]),
           st.sampled_from(["uniform", "fixed", "gaussian", "adversarial"]))
    def test_agreement_bound_holds_on_random_workloads(self, seed, fault_kind,
                                                       delay):
        result = run_maintenance_scenario(PARAMS, rounds=5, fault_kind=fault_kind,
                                          delay=delay, seed=seed)
        start = result.tmax0 + PARAMS.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=60)
        assert skew <= agreement_bound(PARAMS)
