"""Property-based tests (hypothesis) for the multiset machinery of the Appendix."""

import math

from hypothesis import given, settings, strategies as st

from repro.multiset import (
    Multiset,
    fault_tolerant_mean,
    fault_tolerant_midpoint,
    lemma21_bounds_hold,
    lemma23_bound_holds,
    lemma24_holds,
    reduce_multiset,
    x_distance,
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


@st.composite
def multiset_with_f(draw, min_honest=1, max_f=3):
    """A multiset of n = honest + 2f values together with f."""
    f = draw(st.integers(min_value=0, max_value=max_f))
    honest_count = draw(st.integers(min_value=max(min_honest, f + 1), max_value=8))
    values = draw(st.lists(finite, min_size=honest_count + 2 * f,
                           max_size=honest_count + 2 * f))
    return values, f


class TestReduceAndMid:
    @given(multiset_with_f())
    def test_reduce_size(self, data):
        values, f = data
        assert len(reduce_multiset(values, f)) == len(values) - 2 * f

    @given(multiset_with_f())
    def test_reduce_range_shrinks(self, data):
        values, f = data
        full = Multiset(values)
        reduced = full.reduce(f)
        assert reduced.min() >= full.min()
        assert reduced.max() <= full.max()

    @given(multiset_with_f())
    def test_midpoint_within_reduced_range(self, data):
        values, f = data
        reduced = reduce_multiset(values, f)
        result = fault_tolerant_midpoint(values, f)
        assert reduced.min() - 1e-9 <= result <= reduced.max() + 1e-9

    @given(multiset_with_f())
    def test_mean_within_reduced_range(self, data):
        values, f = data
        reduced = reduce_multiset(values, f)
        result = fault_tolerant_mean(values, f)
        assert reduced.min() - 1e-9 <= result <= reduced.max() + 1e-9

    @given(st.lists(finite, min_size=1, max_size=20), finite)
    def test_shift_equivariance(self, values, shift):
        # mid(U + r) = mid(U) + r and reduce(U + r) = reduce(U) + r.
        ms = Multiset(values)
        assert ms.shift(shift).mid() == ms.mid() + shift or \
               math.isclose(ms.shift(shift).mid(), ms.mid() + shift,
                            rel_tol=1e-9, abs_tol=1e-6)

    @given(multiset_with_f())
    def test_translation_invariance_of_averaging(self, data):
        values, f = data
        shift = 17.5
        base = fault_tolerant_midpoint(values, f)
        shifted = fault_tolerant_midpoint([v + shift for v in values], f)
        assert math.isclose(shifted, base + shift, rel_tol=1e-9, abs_tol=1e-6)


@st.composite
def witness_scenario(draw):
    """Generate (U, V, W, f, x) satisfying the hypotheses of Lemmas 21-24."""
    f = draw(st.integers(min_value=1, max_value=3))
    n = draw(st.integers(min_value=3 * f + 1, max_value=3 * f + 5))
    honest = draw(st.lists(st.floats(min_value=-1e3, max_value=1e3,
                                     allow_nan=False), min_size=n - f, max_size=n - f))
    x = draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    # U and V contain, for each honest value, something within x of it, plus f
    # arbitrary (faulty) values each.
    def paired(seed_offset):
        perturbations = draw(st.lists(st.floats(min_value=-x, max_value=x,
                                                allow_nan=False),
                                      min_size=n - f, max_size=n - f))
        bogus = draw(st.lists(finite, min_size=f, max_size=f))
        return [h + p for h, p in zip(honest, perturbations)] + bogus
    u = paired(1)
    v = paired(2)
    return u, v, honest, f, x


class TestAppendixLemmaProperties:
    @settings(max_examples=60)
    @given(witness_scenario())
    def test_lemma21(self, scenario):
        u, _, w, f, x = scenario
        assert lemma21_bounds_hold(u, w, f, x)

    @settings(max_examples=60)
    @given(witness_scenario())
    def test_lemma23(self, scenario):
        u, v, _, f, x = scenario
        assert lemma23_bound_holds(u, v, f, x)

    @settings(max_examples=60)
    @given(witness_scenario())
    def test_lemma24(self, scenario):
        u, v, w, f, x = scenario
        assert lemma24_holds(u, v, w, f, x)

    @settings(max_examples=60)
    @given(witness_scenario())
    def test_x_distance_zero_for_constructed_witnesses(self, scenario):
        u, _, w, f, x = scenario
        # Each honest value has a partner in U within x, so d_x(W, U) = 0.
        assert x_distance(w, u, x * (1 + 1e-9) + 1e-9) == 0
