"""Property-based determinism guards for the repro.runner execution layer.

The batch runner's core guarantee is that ``execute`` is a *pure function* of
the spec: the same :class:`~repro.runner.spec.RunSpec` yields bit-identical
traces no matter when or in which process it runs.  These tests generate specs
across the scenario/fault/delay/topology space and check

* re-executing a spec reproduces the exact trace event sequence and metrics;
* a 2-worker :class:`~repro.runner.batch.BatchRunner` matches serial
  execution bit for bit on a sampled batch of specs.
"""

from hypothesis import given, settings, strategies as st

from repro.analysis import default_parameters
from repro.analysis.metrics import measured_agreement
from repro.runner import BatchRunner, RunSpec, execute

PARAMS = default_parameters(n=7, f=2)

spec_strategy = st.builds(
    RunSpec.maintenance,
    params=st.just(PARAMS),
    rounds=st.integers(min_value=2, max_value=6),
    fault_kind=st.sampled_from([None, "silent", "two_faced", "skew_early",
                                "random_noise"]),
    clock_kind=st.sampled_from(["perfect", "constant"]),
    delay=st.sampled_from(["uniform", "fixed", "gaussian"]),
    topology=st.sampled_from([None, "ring", "star"]),
    seed=st.integers(min_value=0, max_value=2 ** 16),
)


def _fingerprint(result):
    """Everything that must be reproduced exactly: events and metrics."""
    agreement = measured_agreement(result.trace, result.tmax0, result.end_time,
                                   samples=50)
    adjustments = tuple(tuple(result.trace.adjustments(pid))
                        for pid in result.trace.nonfaulty_ids)
    return (result.trace.events, result.start_times, result.end_time,
            result.trace.stats.sent, result.trace.stats.delivered,
            agreement, adjustments)


class TestExecuteIsPure:
    @settings(max_examples=20, deadline=None)
    @given(spec_strategy)
    def test_re_execution_is_bit_identical(self, spec):
        assert _fingerprint(execute(spec)) == _fingerprint(execute(spec))


class TestParallelMatchesSerial:
    @settings(max_examples=4, deadline=None)
    @given(st.lists(spec_strategy, min_size=2, max_size=4, unique=True))
    def test_two_worker_batch_matches_serial(self, specs):
        serial = [execute(spec) for spec in specs]
        parallel = BatchRunner(jobs=2, cache=False).run(specs)
        for spec, a, b in zip(specs, serial, parallel):
            assert b.spec == spec
            assert _fingerprint(a) == _fingerprint(b)
