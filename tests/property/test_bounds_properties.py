"""Property-based tests for the closed-form bounds and parameter derivation."""

import math

from hypothesis import assume, given, settings, strategies as st

from repro.core import (
    SyncParameters,
    adjustment_bound,
    agreement_bound,
    k_exchange_beta,
    lemma9_compensation_error,
    startup_limit,
    startup_round_recurrence,
    steady_state_beta,
    validity_parameters,
)

# Hardware-constant strategies spanning realistic LAN/WAN/cheap-clock regimes.
rhos = st.floats(min_value=0.0, max_value=5e-3)
deltas = st.floats(min_value=1e-3, max_value=0.2)
ratios = st.floats(min_value=0.0, max_value=0.8)  # epsilon = ratio * delta
sizes = st.tuples(st.integers(min_value=1, max_value=6),
                  st.integers(min_value=1, max_value=4)).map(
    lambda pair: (3 * pair[1] + pair[0], pair[1]))  # (n, f) with n >= 3f + 1


def derive(n, f, rho, delta, epsilon):
    return SyncParameters.derive(n=n, f=f, rho=rho, delta=delta, epsilon=epsilon)


class TestDerivedParameters:
    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_derive_always_yields_feasible_parameters(self, size, rho, delta, ratio):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        assert params.is_feasible()
        assert params.p_lower_bound() <= params.round_length <= params.p_upper_bound()
        assert params.beta >= params.beta_lower_bound()

    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_beta_floor_is_at_least_four_epsilon(self, size, rho, delta, ratio):
        n, f = size
        epsilon = ratio * delta
        params = derive(n, f, rho, delta, epsilon)
        assert params.beta_lower_bound() >= 4 * epsilon - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_collection_window_covers_beta_and_the_latest_message(self, size, rho,
                                                                  delta, ratio):
        """The window (1+rho)(beta+delta+eps) exceeds beta + delta + eps."""
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        assert params.collection_window() >= (params.beta + params.delta
                                              + params.epsilon) - 1e-12


class TestBoundMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios, st.floats(min_value=1.05, max_value=4.0))
    def test_agreement_bound_grows_with_beta(self, size, rho, delta, ratio, factor):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        larger = params.with_beta(params.beta * factor)
        assert agreement_bound(larger) > agreement_bound(params)

    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_bounds_are_positive_and_ordered(self, size, rho, delta, ratio):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        assert adjustment_bound(params) > 0
        assert agreement_bound(params) > 0
        assert lemma9_compensation_error(params) > 0
        # gamma >= beta + epsilon: the agreement bound never beats the initial
        # closeness plus one delay uncertainty.
        assert agreement_bound(params) >= params.beta + params.epsilon - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios, st.integers(min_value=1, max_value=6))
    def test_k_exchange_beta_decreases_in_k_towards_its_limit(self, size, rho, delta,
                                                              ratio, k):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        current = k_exchange_beta(params, k)
        following = k_exchange_beta(params, k + 1)
        limit = 4 * params.epsilon + 2 * params.rho * params.round_length
        assert following <= current + 1e-15
        assert current >= limit - 1e-15
        # k = 1 reproduces the basic 4eps + 4rhoP formula.
        assert math.isclose(k_exchange_beta(params, 1), steady_state_beta(params),
                            rel_tol=1e-12, abs_tol=1e-15)


class TestValidityParameters:
    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_envelope_slopes_bracket_one(self, size, rho, delta, ratio):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        vp = validity_parameters(params)
        assert vp.alpha1 <= 1.0 <= vp.alpha2
        assert vp.alpha3 == params.epsilon
        # Symmetric around 1: 1 - alpha1 == alpha2 - 1.
        assert math.isclose(1.0 - vp.alpha1, vp.alpha2 - 1.0,
                            rel_tol=1e-9, abs_tol=1e-12)


class TestStartupRecurrence:
    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios,
           st.floats(min_value=0.0, max_value=100.0))
    def test_recurrence_contracts_towards_the_fixed_point(self, size, rho, delta,
                                                          ratio, spread):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        limit = startup_limit(params)
        after = startup_round_recurrence(params, spread)
        # Above the fixed point the spread shrinks; below it, it cannot exceed
        # the fixed point.
        if spread > limit:
            assert after < spread
        else:
            assert after <= limit + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(sizes, rhos, deltas, ratios)
    def test_fixed_point_is_stationary(self, size, rho, delta, ratio):
        n, f = size
        params = derive(n, f, rho, delta, ratio * delta)
        limit = startup_limit(params)
        assert math.isclose(startup_round_recurrence(params, limit), limit,
                            rel_tol=1e-9, abs_tol=1e-12)
