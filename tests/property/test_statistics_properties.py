"""Property-based tests for the statistics, plotting and export helpers."""

import csv
import io
import math

from hypothesis import given, strategies as st

from repro.analysis import rows_to_csv, summarize
from repro.analysis.plotting import histogram, scale_to_rows, sparkline

finite_floats = st.floats(min_value=-1e9, max_value=1e9,
                          allow_nan=False, allow_infinity=False)
samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestSummarizeProperties:
    @given(samples)
    def test_ordering_invariants(self, values):
        stats = summarize(values)
        assert stats.minimum <= stats.median <= stats.maximum
        assert stats.minimum <= stats.mean <= stats.maximum
        assert stats.count == len(values)
        assert stats.std >= 0

    @given(samples)
    def test_confidence_interval_contains_mean(self, values):
        stats = summarize(values)
        assert stats.ci95_low <= stats.mean <= stats.ci95_high

    @given(samples, finite_floats)
    def test_translation_shifts_mean_and_preserves_std(self, values, shift):
        base = summarize(values)
        shifted = summarize([v + shift for v in values])
        assert math.isclose(shifted.mean, base.mean + shift,
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(shifted.std, base.std, rel_tol=1e-9, abs_tol=1e-6)

    @given(samples)
    def test_duplication_preserves_mean_and_extrema(self, values):
        base = summarize(values)
        doubled = summarize(values + values)
        assert math.isclose(doubled.mean, base.mean, rel_tol=1e-12, abs_tol=1e-12)
        assert doubled.minimum == base.minimum
        assert doubled.maximum == base.maximum


class TestSparklineProperties:
    @given(samples)
    def test_length_and_alphabet(self, values):
        line = sparkline(values)
        assert len(line) == len(values)
        assert set(line) <= set("▁▂▃▄▅▆▇█ ")

    @given(samples)
    def test_extremes_map_to_extreme_glyphs(self, values):
        line = sparkline(values)
        low, high = min(values), max(values)
        if low < high:
            assert line[values.index(low)] == "▁"
            assert line[values.index(high)] == "█"


class TestScaleToRowsProperties:
    @given(samples, st.integers(min_value=1, max_value=40))
    def test_rows_within_range(self, values, height):
        rows = scale_to_rows(values, height)
        assert len(rows) == len(values)
        assert all(row is None or 0 <= row < height for row in rows)

    @given(samples, st.integers(min_value=2, max_value=40))
    def test_monotone_values_give_monotone_rows(self, values, height):
        ordered = sorted(values)
        rows = scale_to_rows(ordered, height)
        assert all(a <= b for a, b in zip(rows, rows[1:]))


class TestHistogramProperties:
    @given(samples, st.integers(min_value=1, max_value=20))
    def test_counts_sum_to_sample_size(self, values, bins):
        text = histogram(values, bins=bins)
        counts = [int(line.split(")")[1].split()[0])
                  for line in text.splitlines() if line.startswith("[")]
        assert sum(counts) == len(values)


class TestCsvProperties:
    @given(st.lists(
        st.dictionaries(
            keys=st.sampled_from(["a", "b", "c"]),
            values=st.integers(min_value=-1000, max_value=1000),
            min_size=1,
        ),
        min_size=1, max_size=20,
    ))
    def test_round_trip_preserves_values(self, rows):
        text = rows_to_csv(rows)
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == len(rows)
        for original, recovered in zip(rows, parsed):
            for key, value in original.items():
                assert recovered[key] == str(value)
