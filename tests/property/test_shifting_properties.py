"""Hypothesis guards for the shifting transform (the lower-bound argument).

The properties the paper's proof rests on, checked mechanically over
synthetic executions on *both* TraceIndex backends (numpy vectorized and the
pure-python fallback — the same toggle ``REPRO_NO_NUMPY`` flips):

* a shifted execution is admissible iff the shifts respect the ε-envelope
  (every retimed delay stays in ``[δ−ε, δ+ε]``);
* logical clocks transform by *exactly* the shift:
  ``L'_p(t + s_p) == L_p(t)`` bit for bit, corrections included;
* ``shift ∘ unshift`` is the identity on traces — not approximately, but
  structurally: the composed transform returns the identical base trace
  object;
* the shifted trace keeps the batch/per-sample bit-identity contract of the
  reconstruction index.

All times and shifts are drawn as dyadic rationals (multiples of 2⁻¹⁰ in a
narrow range), so every addition and subtraction in both the transform and
the property is exact in IEEE-754 and the equalities below are legitimately
``==``, not almost-equal.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adversary.shifting import (
    check_shift_admissible,
    indistinguishability_report,
    shift_execution,
)
from repro.analysis import slowpath
from repro.clocks import ConstantRateClock, CorrectionHistory, rho_rate_bounds
from repro.sim import ExecutionTrace, MessageStats
from repro.sim import traceindex
from repro.sim.recording import MessageRecord
from repro.sim.trace import TraceEvent

RHO = 1e-4

#: dyadic rationals: multiples of 2^-10 — sums/differences in these ranges
#: are exact in binary floating point.
SCALE = 1024.0
dyadic_small = st.integers(min_value=-1024, max_value=1024).map(
    lambda k: k / SCALE)                                    # [-1, 1]
dyadic_time = st.integers(min_value=0, max_value=64 * 1024).map(
    lambda k: k / SCALE)                                    # [0, 64]
dyadic_shift = st.integers(min_value=-2048, max_value=2048).map(
    lambda k: k / SCALE)                                    # [-2, 2]


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    """Run each property on both backends (the REPRO_NO_NUMPY toggle)."""
    if request.param == "numpy" and not traceindex.numpy_available():
        pytest.skip("numpy not installed")
    previous = traceindex.numpy_enabled()
    traceindex.use_numpy(request.param == "numpy")
    yield request.param
    traceindex.use_numpy(previous)


@st.composite
def traces(draw):
    """Synthetic executions with dyadic breakpoint/event times."""
    n = draw(st.integers(min_value=2, max_value=5))
    lo, hi = rho_rate_bounds(RHO)
    clocks = {}
    histories = {}
    events = []
    for pid in range(n):
        clocks[pid] = ConstantRateClock(
            offset=draw(dyadic_small),
            rate=draw(st.floats(min_value=lo, max_value=hi)), rho=RHO)
        history = CorrectionHistory(draw(dyadic_small))
        times = sorted(draw(st.lists(dyadic_time, max_size=5, unique=True)))
        for index, t in enumerate(times):
            history.apply(t, draw(dyadic_small), index)
        histories[pid] = history
        for t in draw(st.lists(dyadic_time, max_size=3)):
            events.append(TraceEvent(real_time=t, process_id=pid,
                                     name="tick", data={"pid": pid}))
    events.sort(key=lambda event: event.real_time)
    return ExecutionTrace(clocks=clocks, histories=histories, faulty_ids=(),
                          events=events, stats=MessageStats(), end_time=64.0)


def shifts_for(trace, draw_fn):
    return {pid: draw_fn() for pid in trace.nonfaulty_ids}


# ---------------------------------------------------------------------------
# shift ∘ unshift is the identity on traces
# ---------------------------------------------------------------------------

@given(trace=traces(), data=st.data())
@settings(max_examples=60, deadline=None)
def test_shift_unshift_is_the_identity(trace, data):
    vector = {pid: data.draw(dyadic_shift, label=f"s{pid}")
              for pid in trace.nonfaulty_ids}
    shifted = shift_execution(trace, vector)
    back = shift_execution(shifted, {pid: -s for pid, s in vector.items()})
    assert back.trace is trace          # structural identity, no fp residue
    assert back.is_identity
    assert shifted.unshift().trace is trace


@given(trace=traces())
@settings(max_examples=20, deadline=None)
def test_zero_shift_is_the_identity(trace):
    identity = shift_execution(trace, {pid: 0.0
                                       for pid in trace.nonfaulty_ids})
    assert identity.trace is trace
    assert identity.is_identity and identity.spread == 0.0


# ---------------------------------------------------------------------------
# logical clocks transform by exactly the shift
# ---------------------------------------------------------------------------

@given(trace=traces(), data=st.data())
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_local_times_transform_by_exactly_the_shift(backend, trace, data):
    vector = {pid: data.draw(dyadic_shift, label=f"s{pid}")
              for pid in trace.nonfaulty_ids}
    shifted = shift_execution(trace, vector).trace
    queries = data.draw(st.lists(dyadic_time, min_size=1, max_size=10),
                        label="queries")
    for pid in trace.nonfaulty_ids:
        offset = vector[pid]
        for t in queries:
            assert shifted.local_time(pid, t + offset) \
                == trace.local_time(pid, t)


@given(trace=traces(), data=st.data())
@settings(max_examples=40, deadline=None)
def test_corrections_and_events_move_in_lockstep(trace, data):
    vector = {pid: data.draw(dyadic_shift, label=f"s{pid}")
              for pid in trace.nonfaulty_ids}
    shifted_exec = shift_execution(trace, vector)
    shifted = shifted_exec.trace
    for pid in trace.nonfaulty_ids:
        # Adjustment *values* are untouched — only their times move.
        assert shifted.adjustments(pid) == trace.adjustments(pid)
        base_times = [t for t in trace.correction_history(pid).times
                      if t != float("-inf")]
        new_times = [t for t in shifted.correction_history(pid).times
                     if t != float("-inf")]
        assert new_times == [t + vector[pid] for t in base_times]
    report = indistinguishability_report(shifted_exec)
    assert report.indistinguishable
    # Probe times at breakpoints are dyadic (exact); the evenly spaced ones
    # are not, so allow the last-ulp wobble of (t + s) − s there.
    assert report.max_clock_deviation < 1e-12


# ---------------------------------------------------------------------------
# admissibility iff the shifts respect the ε-envelope
# ---------------------------------------------------------------------------

@given(n=st.integers(min_value=2, max_value=6),
       epsilon=st.sampled_from([0.125, 0.25, 0.5]),
       data=st.data())
@settings(max_examples=80, deadline=None)
def test_admissible_iff_shifts_respect_the_envelope(n, epsilon, data):
    delta = 1.0
    records = [MessageRecord(sender=p, recipient=q, send_time=0.5,
                             delay=delta)
               for p in range(n) for q in range(n) if p != q]
    vector = {pid: data.draw(dyadic_small, label=f"s{pid}")
              for pid in range(n)}
    audit = check_shift_admissible(records, vector, delta, epsilon,
                                   tolerance=0.0)
    # With every base delay exactly δ, messages run both ways between every
    # pair, so admissibility is exactly "no two shifts differ by more than ε".
    spread = max(vector.values()) - min(vector.values())
    assert audit.admissible == (spread <= epsilon)
    assert audit.messages_checked == n * (n - 1)
    if audit.admissible:
        assert audit.violations == 0 and audit.examples == ()
    else:
        assert audit.violations > 0 and audit.examples


def test_truncated_sequence_shift_vector_is_rejected():
    """A sequence that misses a recorded process must not zero-fill."""
    records = [MessageRecord(sender=0, recipient=2, send_time=0.0,
                             delay=0.01)]
    with pytest.raises(ValueError, match="one entry per process"):
        check_shift_admissible(records, [0.0, 0.003], 0.01, 0.002)


@given(n=st.integers(min_value=2, max_value=5), data=st.data())
@settings(max_examples=30, deadline=None)
def test_dropped_messages_are_unconstrained(n, data):
    records = [MessageRecord(sender=p, recipient=q, send_time=0.0, delay=None)
               for p in range(n) for q in range(n) if p != q]
    vector = {pid: data.draw(dyadic_shift, label=f"s{pid}")
              for pid in range(n)}
    audit = check_shift_admissible(records, vector, 1.0, 0.125)
    assert audit.admissible and audit.messages_checked == 0


# ---------------------------------------------------------------------------
# the shifted trace keeps the fast-path bit-identity contract
# ---------------------------------------------------------------------------

@given(trace=traces(), data=st.data())
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_shifted_trace_matches_seed_reconstruction(backend, trace, data):
    vector = {pid: data.draw(dyadic_shift, label=f"s{pid}")
              for pid in trace.nonfaulty_ids}
    shifted = shift_execution(trace, vector).trace
    grid = sorted(data.draw(st.lists(dyadic_time, max_size=20),
                            label="grid"))
    assert shifted.skew_series(grid) == slowpath.seed_skew_series(shifted,
                                                                  grid)
    for t in grid[:5]:
        assert shifted.local_times(t) == slowpath.seed_local_times(shifted, t)
