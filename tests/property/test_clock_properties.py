"""Property-based tests for the ρ-bounded clock models (Lemmas 1-3)."""

import math

from hypothesis import given, settings, strategies as st

from repro.clocks import (
    ConstantRateClock,
    PiecewiseLinearClock,
    SinusoidalDriftClock,
    lemma1_holds,
    lemma2a_holds,
    lemma2b_holds,
    rho_rate_bounds,
)

rho_values = st.floats(min_value=1e-8, max_value=1e-3, allow_nan=False)
times = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
offsets = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def constant_clock(draw):
    rho = draw(rho_values)
    lo, hi = rho_rate_bounds(rho)
    rate = draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
    return ConstantRateClock(offset=draw(offsets), rate=rate, rho=rho)


@st.composite
def piecewise_clock(draw):
    rho = draw(rho_values)
    lo, hi = rho_rate_bounds(rho)
    count = draw(st.integers(min_value=1, max_value=4))
    rates = [draw(st.floats(min_value=lo, max_value=hi, allow_nan=False))
             for _ in range(count + 1)]
    breakpoints = sorted(draw(st.lists(
        st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
        min_size=count, max_size=count, unique=True)))
    return PiecewiseLinearClock(offset=draw(offsets), rates=rates,
                                breakpoints=breakpoints, rho=rho)


@st.composite
def sinusoidal_clock(draw):
    rho = draw(rho_values)
    amp = draw(st.floats(min_value=0.0, max_value=rho / (1 + rho), allow_nan=False))
    return SinusoidalDriftClock(offset=draw(offsets), amplitude=amp,
                                period=draw(st.floats(min_value=10.0, max_value=5000.0)),
                                phase=draw(st.floats(min_value=0.0, max_value=6.28)),
                                rho=rho)


any_clock = st.one_of(constant_clock(), piecewise_clock(), sinusoidal_clock())


class TestClockLemmas:
    @settings(max_examples=80)
    @given(any_clock, times, times)
    def test_lemma1(self, clock, t1, t2):
        assert lemma1_holds(clock, t1, t2, tolerance=1e-6)

    @settings(max_examples=80)
    @given(any_clock, times, times)
    def test_lemma2a(self, clock, t1, t2):
        assert lemma2a_holds(clock, t1, t2, tolerance=1e-6)

    @settings(max_examples=50)
    @given(any_clock, any_clock, times, times)
    def test_lemma2b(self, clock_c, clock_d, t1, t2):
        assert lemma2b_holds(clock_c, clock_d, t1, t2, tolerance=1e-6)

    @settings(max_examples=80)
    @given(any_clock, times)
    def test_monotonicity(self, clock, t):
        assert clock.read(t + 1.0) > clock.read(t)

    @settings(max_examples=80)
    @given(any_clock, times)
    def test_forward_inverse_roundtrip(self, clock, t):
        assert math.isclose(clock.real_time_at(clock.read(t)), t,
                            rel_tol=1e-6, abs_tol=1e-4)

    @settings(max_examples=80)
    @given(any_clock, times)
    def test_inverse_is_rho_bounded_too(self, clock, t):
        # The inverse of a rho-bounded clock is rho-bounded (Section 3.1):
        # elapsed real time between two clock readings is within the band.
        T1 = clock.read(t)
        T2 = clock.read(t + 10.0)
        lo, hi = rho_rate_bounds(clock.rho)
        elapsed_real = clock.real_time_at(T2) - clock.real_time_at(T1)
        assert (T2 - T1) * (1 / hi) - 1e-4 <= elapsed_real <= (T2 - T1) * (1 / lo) + 1e-4
