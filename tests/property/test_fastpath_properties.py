"""Hypothesis guards for the fast path's bit-identical guarantee.

The indexed/vectorized reconstruction (``repro.sim.traceindex`` +
``repro.analysis.fastmetrics``) must return exactly the floats the seed
implementation (frozen in ``repro.analysis.slowpath``) returns, for every
history shape, drift model, and grid — and the tuple-based event queue must
preserve execution property 4 (TIMER messages deliver after non-TIMER
messages at the same real time) with deterministic FIFO tie-breaking.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import slowpath
from repro.clocks import (
    ConstantRateClock,
    CorrectionHistory,
    PerfectClock,
    PiecewiseLinearClock,
    rho_rate_bounds,
)
from repro.sim import EventQueue, ExecutionTrace, Message, MessageKind, MessageStats
from repro.sim import traceindex

RHO = 1e-4


@pytest.fixture(params=["numpy", "python"])
def backend(request):
    """Run each property on both the numpy and the pure-python backend."""
    if request.param == "numpy" and not traceindex.numpy_available():
        pytest.skip("numpy not installed")
    previous = traceindex.numpy_enabled()
    traceindex.use_numpy(request.param == "numpy")
    yield request.param
    traceindex.use_numpy(previous)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

finite = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                   allow_infinity=False)
small = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False,
                  allow_infinity=False)


@st.composite
def histories(draw):
    history = CorrectionHistory(draw(small))
    times = sorted(draw(st.lists(st.floats(min_value=0.0, max_value=100.0,
                                           allow_nan=False), max_size=8)))
    for index, t in enumerate(times):
        history.apply(t, draw(small), index)
    return history


@st.composite
def clocks(draw):
    kind = draw(st.sampled_from(["perfect", "constant", "piecewise"]))
    if kind == "perfect":
        return PerfectClock(offset=draw(small))
    lo, hi = rho_rate_bounds(RHO)
    if kind == "constant":
        return ConstantRateClock(offset=draw(small),
                                 rate=draw(st.floats(min_value=lo, max_value=hi)),
                                 rho=RHO)
    count = draw(st.integers(min_value=1, max_value=3))
    breakpoints = sorted(draw(st.sets(
        st.floats(min_value=1.0, max_value=90.0, allow_nan=False),
        min_size=count, max_size=count)))
    rates = [draw(st.floats(min_value=lo, max_value=hi))
             for _ in range(count + 1)]
    return PiecewiseLinearClock(offset=draw(small), rates=rates,
                                breakpoints=breakpoints, rho=RHO)


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    clock_map = {pid: draw(clocks()) for pid in range(n)}
    history_map = {pid: draw(histories()) for pid in range(n)}
    faulty = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
    return ExecutionTrace(clocks=clock_map, histories=history_map,
                          faulty_ids=faulty, events=[], stats=MessageStats(),
                          end_time=100.0)


grids = st.lists(st.floats(min_value=-10.0, max_value=110.0, allow_nan=False),
                 max_size=30)


# ---------------------------------------------------------------------------
# Fast path == seed path
# ---------------------------------------------------------------------------

@given(history=histories(), queries=grids)
def test_correction_at_matches_seed(history, queries):
    for t in queries:
        assert history.correction_at(t) == slowpath.seed_correction_at(history, t)


@given(trace=traces(), grid=grids)
@settings(max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_local_times_match_seed(backend, trace, grid):
    for t in grid:
        assert trace.local_times(t) == slowpath.seed_local_times(trace, t)
        assert (trace.local_times(t, include_faulty=True)
                == slowpath.seed_local_times(trace, t, include_faulty=True))


@given(trace=traces(), grid=grids)
@settings(max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_skew_series_matches_seed_on_sorted_grid(backend, trace, grid):
    grid = sorted(grid)
    assert trace.skew_series(grid) == slowpath.seed_skew_series(trace, grid)
    assert trace.max_skew(grid) == slowpath.seed_max_skew(trace, grid)


@given(trace=traces(), grid=grids)
@settings(max_examples=60,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_skew_series_matches_seed_on_unsorted_grid(backend, trace, grid):
    # Unsorted grids take the per-point bisect branch; same floats required.
    assert trace.skew_series(grid) == slowpath.seed_skew_series(trace, grid)
    assert trace.max_skew(grid) == slowpath.seed_max_skew(trace, grid)


@given(trace=traces(), grid=grids)
@settings(max_examples=40,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_index_survives_history_growth(backend, trace, grid):
    """Appending a correction after index build must invalidate it."""
    grid = sorted(grid)
    trace.max_skew(grid)  # force the index to exist
    trace.correction_history(0).apply(200.0, 0.25, 99)
    assert trace.skew_series(grid) == slowpath.seed_skew_series(trace, grid)
    assert trace.local_times(250.0) == slowpath.seed_local_times(trace, 250.0)


# ---------------------------------------------------------------------------
# Event-queue ordering (execution property 4)
# ---------------------------------------------------------------------------

message_specs = st.lists(
    st.tuples(st.sampled_from(list(MessageKind)),
              st.integers(min_value=0, max_value=3)),
    max_size=40)


@given(specs=message_specs, raw=st.booleans())
def test_event_queue_tuple_ordering_preserves_property4(specs, raw):
    """Pop order == stable sort by (delivery time, TIMER-last), regardless of
    whether events enter as Message objects or raw field tuples."""
    queue = EventQueue()
    for index, (kind, slot) in enumerate(specs):
        if raw:
            queue.push_fields(kind, 0, 0, index, 0.0, float(slot))
        else:
            queue.push(Message(kind=kind, sender=0, recipient=0, payload=index,
                               send_time=0.0, delivery_time=float(slot)))
    expected = [index for index, (kind, slot) in sorted(
        enumerate(specs),
        key=lambda item: (item[1][1], item[1][0] is MessageKind.TIMER, item[0]))]
    popped = [queue.pop().payload for _ in specs]
    assert popped == expected
    assert queue.delivered_count == len(specs)
