"""Behavioural unit tests for the Section 10 baseline algorithms.

These complement ``test_baselines.py``: rather than checking that each
algorithm synchronizes end-to-end, they pin down the algorithm-specific
behaviours Section 10 discusses — the [LM] egocentric clipping, the [MS]
acceptance test and its graceful degradation, the [ST] f+1 / n−f relay
thresholds, the [HSSD] single-message acceleration (and the regression test
for the stale-timer bug), Marzullo's interval intersection, and the
free-running control's drift envelope.
"""

import pytest

from repro.analysis import measured_agreement, run_algorithm_scenario
from repro.baselines import (
    HSSDProcess,
    InteractiveConvergenceProcess,
    MahaneySchneiderProcess,
    SrikanthTouegProcess,
    free_running_skew_bound,
    hssd_adjustment_estimate,
    hssd_agreement_estimate,
    lm_adjustment_estimate,
    lm_agreement_estimate,
    marzullo_intersection,
    st_adjustment_estimate,
    st_agreement_estimate,
)
from repro.core import SyncParameters


@pytest.fixture(scope="module")
def params():
    return SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


class _StubContext:
    """Minimal stand-in for ProcessContext where only n is consulted."""

    def __init__(self, n):
        self.n = n
        self.process_id = 0
        self.process_ids = range(n)


class TestInteractiveConvergence:
    def test_offsets_beyond_threshold_are_replaced_by_own_value(self, params):
        process = InteractiveConvergenceProcess(params, threshold=0.01)
        offsets = {0: 0.0, 1: 0.004, 2: -0.003, 3: 5.0, 4: -7.0, 5: 0.002, 6: 0.0}
        combined = process.combine(_StubContext(7), offsets)
        # The two outrageous values count as 0 (own value), so the average is
        # bounded by the honest offsets.
        assert abs(combined) <= 0.01
        expected = (0.0 + 0.004 - 0.003 + 0.0 + 0.0 + 0.002 + 0.0) / 7
        assert combined == pytest.approx(expected)

    def test_estimates_scale_with_n(self, params):
        bigger = SyncParameters.derive(n=13, f=2, rho=params.rho, delta=params.delta,
                                       epsilon=params.epsilon)
        assert lm_agreement_estimate(bigger) > lm_agreement_estimate(params)
        assert lm_adjustment_estimate(bigger) > lm_adjustment_estimate(params)


class TestMahaneySchneider:
    def test_lonely_outliers_are_discarded(self, params):
        process = MahaneySchneiderProcess(params, closeness=0.01)
        offsets = {0: 0.0, 1: 0.001, 2: -0.002, 3: 0.003, 4: -0.001, 5: 9.0, 6: -9.0}
        combined = process.combine(_StubContext(7), offsets)
        honest = [0.0, 0.001, -0.002, 0.003, -0.001]
        assert combined == pytest.approx(sum(honest) / len(honest))

    def test_all_values_rejected_falls_back_to_zero(self, params):
        process = MahaneySchneiderProcess(params, closeness=1e-6)
        offsets = {pid: pid * 1.0 for pid in range(7)}
        assert process.combine(_StubContext(7), offsets) == 0.0

    def test_graceful_degradation_beyond_f(self, params):
        """Even with f+1 wild values the accepted average stays in the honest range."""
        process = MahaneySchneiderProcess(params, closeness=0.01)
        offsets = {0: 0.0, 1: 0.002, 2: -0.002, 3: 0.001, 4: 50.0, 5: -80.0, 6: 120.0}
        combined = process.combine(_StubContext(7), offsets)
        assert -0.002 <= combined <= 0.002


class TestSrikanthToueg:
    def test_relay_after_f_plus_1_and_accept_after_n_minus_f(self, params):
        from repro.baselines import STRoundMessage
        process = SrikanthTouegProcess(params, max_rounds=3)

        sent = []
        adjustments = []

        class Ctx(_StubContext):
            def local_time(self):
                return 0.005

            def broadcast(self, payload):
                sent.append(payload)

            def adjust_correction(self, adj, round_index=-1):
                adjustments.append(adj)
                return adj

            def set_timer(self, logical_time, payload=None):
                return True

            def log(self, name, **data):
                pass

        ctx = Ctx(7)
        # Two distinct senders (f = 2): not yet enough to relay.
        process.on_message(ctx, 1, STRoundMessage(round_index=0))
        process.on_message(ctx, 2, STRoundMessage(round_index=0))
        assert sent == []
        # The third distinct sender crosses f + 1: the process relays.
        process.on_message(ctx, 3, STRoundMessage(round_index=0))
        assert len(sent) == 1
        # n − f = 5 distinct senders: the round is accepted and the clock set.
        process.on_message(ctx, 4, STRoundMessage(round_index=0))
        assert adjustments == []
        process.on_message(ctx, 5, STRoundMessage(round_index=0))
        assert len(adjustments) == 1
        assert adjustments[0] == pytest.approx(params.delta + params.T0 - 0.005)

    def test_estimates_match_section10(self, params):
        assert st_agreement_estimate(params) == pytest.approx(params.delta
                                                              + params.epsilon)
        assert st_adjustment_estimate(params) == pytest.approx(
            3 * (params.delta + params.epsilon))


class TestHSSD:
    def test_stale_timer_does_not_start_the_next_round(self, params):
        """Regression: a timer armed for round i must be ignored once round i
        has been begun via a relayed message (it used to trigger round i+1
        immediately, accelerating the clock by a full round)."""
        from repro.baselines import SignedRoundMessage
        process = HSSDProcess(params, max_rounds=5)
        updates = []

        class Ctx(_StubContext):
            def __init__(self, n):
                super().__init__(n)
                self._local = params.T0 + params.round_length - 0.002

            def local_time(self):
                return self._local

            def broadcast(self, payload):
                pass

            def adjust_correction(self, adj, round_index=-1):
                updates.append((round_index, adj))
                self._local += adj
                return adj

            def set_timer(self, logical_time, payload=None):
                return True

            def log(self, name, **data):
                pass

        ctx = Ctx(7)
        process.round_index = 1
        # A validly signed round-1 message arrives just before our own timer.
        process.on_message(ctx, 3, SignedRoundMessage(round_index=1, signers=(3,)))
        assert [index for index, _ in updates] == [1]
        # The stale timer for round 1 then fires: it must NOT begin round 2.
        process.on_timer(ctx, payload=1)
        assert [index for index, _ in updates] == [1]

    def test_faulty_processes_can_only_accelerate(self, params):
        """[HSSD] adjustments triggered by (possibly forged-timing) messages are
        forward jumps: the adjustment is positive when the round message leads
        the local clock."""
        from repro.baselines import SignedRoundMessage
        process = HSSDProcess(params, max_rounds=5)
        adjustments = []

        class Ctx(_StubContext):
            def local_time(self):
                return params.T0 + params.round_length - 0.004

            def broadcast(self, payload):
                pass

            def adjust_correction(self, adj, round_index=-1):
                adjustments.append(adj)
                return adj

            def set_timer(self, logical_time, payload=None):
                return True

            def log(self, name, **data):
                pass

        process.round_index = 1
        process.on_message(Ctx(7), 2, SignedRoundMessage(round_index=1, signers=(2,)))
        assert adjustments and adjustments[0] > 0

    def test_unsigned_messages_are_rejected(self, params):
        from repro.baselines import SignedRoundMessage
        process = HSSDProcess(params, max_rounds=5)
        called = []

        class Ctx(_StubContext):
            def local_time(self):
                return params.T0 + params.round_length - 0.004

            def adjust_correction(self, adj, round_index=-1):
                called.append(adj)
                return adj

            def broadcast(self, payload):
                pass

            def set_timer(self, logical_time, payload=None):
                return True

            def log(self, name, **data):
                pass

        process.round_index = 1
        process.on_message(Ctx(7), 2, SignedRoundMessage(round_index=1, signers=()))
        assert called == []

    def test_estimates_match_section10(self, params):
        assert hssd_agreement_estimate(params) == pytest.approx(params.delta
                                                                + params.epsilon)
        assert hssd_adjustment_estimate(params) == pytest.approx(
            (params.f + 1) * (params.delta + params.epsilon))

    def test_high_drift_run_stays_near_delta_plus_epsilon(self):
        """End-to-end regression for the stale-timer bug at high drift."""
        params = SyncParameters.derive(n=7, f=2, rho=2e-3, delta=0.01, epsilon=0.002)
        result = run_algorithm_scenario("hssd", params, rounds=12,
                                        fault_kind="silent", seed=2)
        start = result.tmax0 + 2 * params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=120)
        assert skew <= 2 * hssd_agreement_estimate(params)


class TestMarzulloIntersection:
    def test_majority_overlap(self):
        region = marzullo_intersection([(0.0, 1.0), (0.5, 1.5), (0.8, 2.0)],
                                       required=2)
        assert region == (0.5, 1.5)

    def test_outlier_is_ignored_with_enough_required_coverage(self):
        region = marzullo_intersection([(0.0, 1.0), (0.2, 0.9), (10.0, 11.0)],
                                       required=2)
        assert region == (0.2, 0.9)

    def test_no_region_when_requirement_unmet(self):
        assert marzullo_intersection([(0.0, 1.0), (2.0, 3.0)], required=2) is None

    def test_touching_intervals_count(self):
        region = marzullo_intersection([(0.0, 1.0), (1.0, 2.0)], required=2)
        assert region == (1.0, 1.0)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            marzullo_intersection([(1.0, 0.0)], required=1)
        with pytest.raises(ValueError):
            marzullo_intersection([(0.0, 1.0)], required=0)


class TestUnsynchronizedControl:
    def test_free_running_skew_bound_grows_linearly(self, params):
        early = free_running_skew_bound(params, 10.0)
        late = free_running_skew_bound(params, 20.0)
        assert late > early
        assert early >= params.beta

    def test_measured_free_running_skew_respects_the_bound(self):
        params = SyncParameters.derive(n=7, f=2, rho=2e-3, delta=0.01, epsilon=0.002)
        result = run_algorithm_scenario("unsynchronized", params, rounds=10,
                                        fault_kind=None, seed=4)
        elapsed = result.end_time - result.tmin0
        skew = measured_agreement(result.trace, result.tmax0, result.end_time,
                                  samples=100)
        assert skew <= free_running_skew_bound(params, elapsed)
