"""Unit tests for fault strategies, wrappers and Byzantine adversaries."""

import pytest

from repro.analysis import round_start_spreads, run_maintenance_scenario
from repro.clocks import PerfectClock
from repro.core import RoundMessage, WelchLynchProcess, agreement_bound
from repro.faults import (
    CrashStrategy,
    FaultyProcessWrapper,
    OmissionStrategy,
    RandomNoiseAttacker,
    ReceiveOmissionStrategy,
    SilentProcess,
    SkewAttacker,
    TwoFacedClockAttacker,
    CollusionScheduler,
    crash_after,
    omit_sends,
)
from repro.sim import FixedDelayModel, Process, System


class Collector(Process):
    """Records ordinary messages it receives."""

    def __init__(self):
        self.received = []

    def on_message(self, ctx, sender, payload):
        self.received.append((ctx.now, sender, payload))


class Chatter(Process):
    """Broadcasts a message at start and again on each self-timer."""

    def on_start(self, ctx):
        ctx.broadcast("hi")
        ctx.set_timer_physical(ctx.physical_time() + 1.0)

    def on_timer(self, ctx, payload=None):
        ctx.broadcast("hi-again")


def run_pair(faulty_process, seconds=5.0):
    collector = Collector()
    system = System([faulty_process, collector],
                    [PerfectClock(), PerfectClock()],
                    delay_model=FixedDelayModel(0.01))
    system.schedule_start(0, 0.0)
    system.run_until(seconds)
    return collector, system


class TestCrash:
    def test_behaves_correctly_before_crash(self):
        collector, _ = run_pair(crash_after(Chatter(), crash_real_time=0.5))
        assert any(payload == "hi" for _, _, payload in collector.received)

    def test_silent_after_crash(self):
        collector, _ = run_pair(crash_after(Chatter(), crash_real_time=0.5))
        assert not any(payload == "hi-again" for _, _, payload in collector.received)

    def test_crash_at_time_zero_means_fully_silent(self):
        collector, _ = run_pair(crash_after(Chatter(), crash_real_time=0.0))
        assert collector.received == []

    def test_wrapper_is_marked_faulty(self):
        wrapper = crash_after(Chatter(), 1.0)
        assert wrapper.is_faulty
        assert "Crash" in wrapper.label()

    def test_silent_process(self):
        collector, system = run_pair(SilentProcess())
        assert collector.received == []
        assert 0 in system.faulty_ids()


class TestOmission:
    def test_all_drops(self):
        collector, _ = run_pair(omit_sends(Chatter(), drop_probability=1.0))
        assert collector.received == []

    def test_no_drops(self):
        collector, _ = run_pair(omit_sends(Chatter(), drop_probability=0.0))
        assert len(collector.received) >= 2

    def test_partial_drops_counted(self):
        strategy = OmissionStrategy(drop_probability=0.5, seed=1)
        wrapper = FaultyProcessWrapper(Chatter(), strategy)
        run_pair(wrapper)
        assert strategy.dropped >= 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            OmissionStrategy(drop_probability=1.5)
        with pytest.raises(ValueError):
            ReceiveOmissionStrategy(drop_probability=-0.1)

    def test_receive_omission_keeps_timers(self):
        strategy = ReceiveOmissionStrategy(drop_probability=1.0, seed=0)
        assert strategy.should_deliver(None, "timer", None, None)
        assert strategy.should_deliver(None, "start", None, None)
        assert not strategy.should_deliver(None, "message", 1, "x")


class TestByzantineAttackers:
    def test_two_faced_sends_to_both_halves(self, small_params):
        attacker = TwoFacedClockAttacker(small_params, max_rounds=1)
        collectors = [Collector() for _ in range(3)]
        system = System([attacker] + collectors,
                        [PerfectClock() for _ in range(4)],
                        delay_model=FixedDelayModel(small_params.delta))
        system.schedule_start(0, 0.0)
        system.run_until(2 * small_params.round_length)
        arrival_even = [t for t, _, _ in collectors[1].received]   # pid 2
        arrival_odd = [t for t, _, _ in collectors[0].received]    # pid 1
        assert arrival_even and arrival_odd
        # The "late" half hears strictly later than the "early" half.
        assert min(arrival_odd) > min(arrival_even) or \
               min(arrival_even) > min(arrival_odd)

    def test_skew_attacker_direction_validation(self, small_params):
        with pytest.raises(ValueError):
            SkewAttacker(small_params, direction=0)

    def test_skew_attacker_sends_every_round(self, small_params):
        attacker = SkewAttacker(small_params, direction=-1, max_rounds=3)
        collector = Collector()
        system = System([attacker, collector], [PerfectClock(), PerfectClock()],
                        delay_model=FixedDelayModel(small_params.delta))
        system.schedule_start(0, 0.0)
        system.run_until(4 * small_params.round_length)
        round_values = {payload.round_time for _, _, payload in collector.received
                        if isinstance(payload, RoundMessage)}
        assert len(round_values) == 3

    def test_random_noise_attacker_sends_bogus_rounds(self, small_params):
        attacker = RandomNoiseAttacker(small_params, messages_per_round=4,
                                       max_rounds=2)
        collector = Collector()
        system = System([attacker, collector], [PerfectClock(), PerfectClock()],
                        delay_model=FixedDelayModel(small_params.delta), seed=5)
        system.schedule_start(0, 0.0)
        system.run_until(3 * small_params.round_length)
        assert collector.received

    def test_collusion_builds_aligned_team(self, small_params):
        team = CollusionScheduler(small_params, direction=+1).build(2, max_rounds=1)
        assert len(team) == 2
        assert all(isinstance(member, SkewAttacker) for member in team)
        assert all(member.direction == +1 for member in team)


class TestFaultToleranceOfTheAlgorithm:
    @pytest.mark.parametrize("fault_kind", ["silent", "crash", "two_faced",
                                            "skew_early", "skew_late",
                                            "random_noise", "omission"])
    def test_agreement_holds_under_every_fault_kind(self, medium_params, fault_kind):
        result = run_maintenance_scenario(medium_params, rounds=6,
                                          fault_kind=fault_kind, seed=2)
        start = result.tmax0 + medium_params.round_length
        grid = [start + i * (result.end_time - start) / 60 for i in range(61)]
        assert result.trace.max_skew(grid) <= agreement_bound(medium_params)
