"""Unit tests for repro.runner (RunSpec, execute, BatchRunner, replicate)."""

import pickle

import pytest

from repro.analysis import default_parameters
from repro.analysis.experiments import (
    PartitionHealResult,
    ScenarioResult,
    run_maintenance_scenario,
)
from repro.runner import (
    BatchRunner,
    ReplicatedResult,
    RunSpec,
    execute,
    execute_many,
    replicate,
)
from repro.runner import batch as batch_module


@pytest.fixture(scope="module")
def params():
    return default_parameters(n=7, f=2)


class TestRunSpecValidation:
    def test_rejects_unknown_kind(self, params):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            RunSpec(kind="mystery", params=params)

    def test_algorithm_kind_requires_name(self, params):
        with pytest.raises(ValueError, match="needs an algorithm"):
            RunSpec(kind="algorithm", params=params)

    def test_algorithm_name_only_for_algorithm_kind(self, params):
        with pytest.raises(ValueError, match="does not take an algorithm"):
            RunSpec(kind="maintenance", params=params, algorithm="marzullo")

    def test_rejects_non_positive_rounds(self, params):
        with pytest.raises(ValueError, match="rounds"):
            RunSpec(kind="maintenance", params=params, rounds=0)

    def test_partition_heal_rejects_fault_kind(self, params):
        with pytest.raises(ValueError, match="fault_kind=None"):
            RunSpec(kind="partition_heal", params=params)

    def test_reintegration_rejects_topology(self, params):
        with pytest.raises(ValueError, match="complete graph"):
            RunSpec(kind="reintegration", params=params, fault_kind=None,
                    topology="ring")

    def test_rejects_unknown_option_keys(self, params):
        with pytest.raises(ValueError, match="not supported by kind"):
            RunSpec.maintenance(params, warp_factor=9)

    def test_rejects_fault_count_without_fault_kind(self, params):
        with pytest.raises(ValueError, match="inject no faults"):
            RunSpec.maintenance(params, fault_kind=None, fault_count=2)
        # Explicit zero faults stays legal either way.
        RunSpec.maintenance(params, fault_kind=None, fault_count=0)

    def test_rejects_delay_model_objects(self, params):
        from repro.sim.network import FixedDelayModel
        with pytest.raises(TypeError, match="declarative"):
            RunSpec(kind="maintenance", params=params,
                    delay=FixedDelayModel(0.01))


class TestRunSpecValueSemantics:
    def test_equal_specs_hash_equal(self, params):
        a = RunSpec.maintenance(params, rounds=5, seed=3,
                                delay_options={"b": 2.0, "a": 1.0})
        b = RunSpec.maintenance(params, rounds=5, seed=3,
                                delay_options={"a": 1.0, "b": 2.0})
        assert a == b
        assert hash(a) == hash(b)

    def test_options_normalize_to_sorted_tuples(self, params):
        spec = RunSpec.maintenance(params, stagger_interval=0.1,
                                   exchanges_per_round=2)
        assert spec.options == (("exchanges_per_round", 2),
                                ("stagger_interval", 0.1))
        assert spec.options_dict() == {"exchanges_per_round": 2,
                                       "stagger_interval": 0.1}

    def test_with_seed_changes_only_the_seed(self, params):
        spec = RunSpec.maintenance(params, rounds=5, seed=0)
        reseeded = spec.with_seed(9)
        assert reseeded.seed == 9
        assert reseeded.replace(seed=0) == spec

    def test_round_trips_through_pickle(self, params):
        spec = RunSpec.partition_heal(params, rounds=12, partition_round=3,
                                      heal_round=7, topology="ring", seed=2)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_describe_names_the_run(self, params):
        spec = RunSpec.algorithm_run("marzullo", params, topology="ring",
                                     seed=4)
        label = spec.describe()
        assert "algorithm" in label and "marzullo" in label
        assert "ring" in label and "seed=4" in label


class TestExecute:
    def test_maintenance_matches_direct_builder_call(self, params):
        spec = RunSpec.maintenance(params, rounds=5, seed=3)
        via_spec = execute(spec)
        direct = run_maintenance_scenario(params, rounds=5, seed=3)
        assert via_spec.trace.events == direct.trace.events
        assert via_spec.end_time == direct.end_time
        assert via_spec.start_times == direct.start_times

    def test_result_carries_its_spec(self, params):
        spec = RunSpec.maintenance(params, rounds=4, seed=1)
        assert execute(spec).spec == spec

    def test_dispatches_every_kind(self, params):
        specs = [
            RunSpec.maintenance(params, rounds=4),
            RunSpec.algorithm_run("srikanth_toueg", params, rounds=4),
            RunSpec.startup(params, rounds=4),
            RunSpec.reintegration(params, rounds=8),
            RunSpec.partition_heal(params, rounds=12, partition_round=3,
                                   heal_round=7),
        ]
        for spec in specs:
            result = execute(spec)
            assert isinstance(result, ScenarioResult)
            assert result.spec == spec
        assert isinstance(execute(specs[-1]), PartitionHealResult)

    def test_topology_spec_string_is_honored(self, params):
        result = execute(RunSpec.maintenance(params, rounds=4, fault_kind=None,
                                             topology="ring", seed=1))
        # The ring stretches the effective envelope: delta' > delta.
        assert result.params.delta > params.delta
        assert result.trace.stats.relayed > 0


class TestBatchRunner:
    def test_results_in_input_order(self, params):
        specs = [RunSpec.maintenance(params, rounds=3, seed=seed)
                 for seed in (5, 1, 3)]
        results = BatchRunner().run(specs)
        assert [r.spec.seed for r in results] == [5, 1, 3]

    def test_duplicates_computed_once(self, params, monkeypatch):
        calls = []

        def counting_execute(spec):
            calls.append(spec)
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", counting_execute)
        spec = RunSpec.maintenance(params, rounds=3, seed=0)
        results = BatchRunner().run([spec, spec.with_seed(1), spec])
        assert len(calls) == 2
        assert results[0] is results[2]

    def test_cache_persists_across_batches(self, params, monkeypatch):
        calls = []

        def counting_execute(spec):
            calls.append(spec)
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", counting_execute)
        runner = BatchRunner()
        spec = RunSpec.maintenance(params, rounds=3, seed=0)
        runner.run([spec])
        runner.run([spec])
        assert len(calls) == 1
        assert runner.cache_size == 1
        runner.clear_cache()
        runner.run([spec])
        assert len(calls) == 2

    def test_cache_can_be_disabled(self, params, monkeypatch):
        calls = []

        def counting_execute(spec):
            calls.append(spec)
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", counting_execute)
        runner = BatchRunner(cache=False)
        spec = RunSpec.maintenance(params, rounds=3, seed=0)
        runner.run([spec])
        runner.run([spec])
        assert len(calls) == 2
        assert runner.cache_size == 0

    def test_on_result_streams_computed_specs(self, params):
        seen = []
        specs = [RunSpec.maintenance(params, rounds=3, seed=seed)
                 for seed in (0, 1)]
        BatchRunner().run(specs + [specs[0]],
                          on_result=lambda spec, result: seen.append(spec.seed))
        assert seen == [0, 1]  # once per computed spec, first-occurrence order

    def test_rejects_non_specs(self, params):
        with pytest.raises(TypeError, match="RunSpecs"):
            BatchRunner().run([params])

    def test_run_iter_is_lazy_when_serial(self, params, monkeypatch):
        executed = []

        def counting_execute(spec):
            executed.append(spec.seed)
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", counting_execute)
        specs = [RunSpec.maintenance(params, rounds=3, seed=seed)
                 for seed in (0, 1, 2)]
        stream = BatchRunner().run_iter(specs)
        assert executed == []          # nothing runs until pulled
        next(stream)
        assert executed == [0]         # only the consumed spec ran
        next(stream)
        assert executed == [0, 1]

    def test_parallel_matches_serial(self, params):
        specs = [RunSpec.maintenance(params, rounds=4, seed=seed)
                 for seed in range(3)]
        serial = BatchRunner(jobs=1).run(specs)
        parallel = BatchRunner(jobs=2, cache=False).run(specs)
        for a, b in zip(serial, parallel):
            assert a.trace.events == b.trace.events
            assert a.start_times == b.start_times

    def test_execute_many_convenience(self, params):
        spec = RunSpec.maintenance(params, rounds=3, seed=0)
        results = execute_many([spec], jobs=1)
        assert results[0].spec == spec

    def test_jobs_below_one_maps_to_cpu_count(self):
        assert BatchRunner(jobs=0).jobs >= 1


class TestReplicate:
    def test_summary_covers_every_seed(self, params):
        spec = RunSpec.maintenance(params, rounds=4)
        rep = replicate(spec, seeds=[0, 1, 2])
        assert isinstance(rep, ReplicatedResult)
        assert rep.seeds == (0, 1, 2)
        assert rep.agreement.count == 3
        assert len(rep.results) == 3
        assert rep.agreement.minimum <= rep.agreement.mean <= rep.agreement.maximum
        assert rep.worst_agreement == rep.agreement.maximum

    def test_agreement_stays_under_gamma(self, params):
        from repro.core import agreement_bound
        spec = RunSpec.maintenance(params, rounds=6)
        rep = replicate(spec, seeds=range(3))
        assert rep.worst_agreement <= agreement_bound(params)
        assert rep.validity_holds

    def test_metrics_dict_is_flat_and_complete(self, params):
        rep = replicate(RunSpec.maintenance(params, rounds=4), seeds=[0, 1])
        metrics = rep.metrics()
        assert metrics["seeds"] == 2.0
        for key in ("agreement_mean", "agreement_min", "agreement_max",
                    "agreement_ci95_low", "agreement_ci95_high",
                    "validity_violation_rate_mean"):
            assert key in metrics

    def test_requires_distinct_seeds(self, params):
        spec = RunSpec.maintenance(params, rounds=3)
        with pytest.raises(ValueError, match="distinct"):
            replicate(spec, seeds=[1, 1])
        with pytest.raises(ValueError, match="at least one"):
            replicate(spec, seeds=[])

    def test_shared_runner_reuses_cached_results(self, params, monkeypatch):
        calls = []

        def counting_execute(spec):
            calls.append(spec)
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", counting_execute)
        runner = BatchRunner()
        spec = RunSpec.maintenance(params, rounds=3)
        replicate(spec, seeds=[0, 1], runner=runner)
        replicate(spec, seeds=[0, 1, 2], runner=runner)
        assert len(calls) == 3  # seeds 0 and 1 came from the cache


class TestTolerateFailures:
    def test_poison_spec_becomes_specfailure_slot(self, params, monkeypatch):
        from repro.runner import SpecFailure

        def flaky(spec):
            if spec.seed == 2:
                raise ValueError("poison seed")
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", flaky)
        specs = [RunSpec.maintenance(params, rounds=3, seed=s)
                 for s in range(4)]
        results = BatchRunner().run(specs, tolerate_failures=True)
        failure = results[2]
        assert isinstance(failure, SpecFailure)
        assert failure.spec == specs[2]
        assert failure.error == "ValueError: poison seed"
        assert "poison seed" in failure.traceback
        assert "failed: ValueError" in failure.describe()
        # Completed siblings are intact.
        for i in (0, 1, 3):
            assert results[i].trace.events == execute(specs[i]).trace.events

    def test_default_still_raises(self, params, monkeypatch):
        def always(spec):
            raise ValueError("poison")

        monkeypatch.setattr(batch_module, "execute", always)
        spec = RunSpec.maintenance(params, rounds=3)
        with pytest.raises(ValueError, match="poison"):
            BatchRunner().run([spec])

    def test_failures_are_cached_like_results(self, params, monkeypatch):
        calls = []

        def flaky(spec):
            calls.append(spec)
            raise ValueError("poison")

        monkeypatch.setattr(batch_module, "execute", flaky)
        runner = BatchRunner()
        spec = RunSpec.maintenance(params, rounds=3)
        runner.run([spec], tolerate_failures=True)
        runner.run([spec], tolerate_failures=True)
        assert len(calls) == 1  # the known-bad spec did not re-run

    def test_pool_path_ships_failures_home(self, params):
        from repro.runner import SpecFailure
        from repro.sim.events import EventBudgetExceeded

        good = [RunSpec.maintenance(params, rounds=3, seed=s)
                for s in range(3)]
        # A genuinely failing spec that reproduces inside pool workers: an
        # interrupt budget far below what the run needs.
        bad = RunSpec.maintenance(params, rounds=3, seed=9, max_events=3)
        results = BatchRunner(jobs=2).run(good + [bad],
                                          tolerate_failures=True)
        assert isinstance(results[3], SpecFailure)
        assert EventBudgetExceeded.__name__ in results[3].error
        serial = BatchRunner().run(good)
        for got, expected in zip(results, serial):
            assert got.trace.events == expected.trace.events


class TestReplicatePartial:
    def test_failing_seed_yields_partial_result(self, params, monkeypatch):
        def flaky(spec):
            if spec.seed == 2:
                raise ValueError("poison seed")
            return execute(spec)

        monkeypatch.setattr(batch_module, "execute", flaky)
        spec = RunSpec.maintenance(params, rounds=3)
        rep = replicate(spec, seeds=[0, 1, 2, 3], tolerate_failures=True)
        assert rep.seeds == (0, 1, 3)
        assert rep.failed_seeds == (2,)
        assert not rep.complete
        assert len(rep.results) == 3
        assert rep.agreement.count == 3
        failure = rep.failures[0]
        assert failure.seed == 2
        assert failure.error == "ValueError: poison seed"
        assert "seed 2 failed" in failure.describe()
        assert rep.metrics()["seeds"] == 3.0
        assert rep.metrics()["failed_seeds"] == 1.0

    def test_all_seeds_failing_raises_replication_error(self, params,
                                                        monkeypatch):
        from repro.runner import ReplicationError

        def always(spec):
            raise ValueError("dead")

        monkeypatch.setattr(batch_module, "execute", always)
        spec = RunSpec.maintenance(params, rounds=3)
        with pytest.raises(ReplicationError, match="all 2 seeds failed"):
            replicate(spec, seeds=[0, 1], tolerate_failures=True)
        try:
            replicate(spec, seeds=[0, 1], tolerate_failures=True)
        except ReplicationError as error:
            assert len(error.failures) == 2
            assert error.failures[0].seed == 0

    def test_complete_replication_reports_no_failures(self, params):
        rep = replicate(RunSpec.maintenance(params, rounds=3), seeds=[0, 1])
        assert rep.complete
        assert rep.failures == ()
        assert rep.failed_seeds == ()

    def test_default_replication_still_raises(self, params, monkeypatch):
        def always(spec):
            raise ValueError("dead")

        monkeypatch.setattr(batch_module, "execute", always)
        spec = RunSpec.maintenance(params, rounds=3)
        with pytest.raises(ValueError, match="dead"):
            replicate(spec, seeds=[0, 1])


class TestInterruptCleanup:
    """A KeyboardInterrupt mid-batch must not leak pool workers."""

    @staticmethod
    def _await_no_children(timeout=10.0):
        import multiprocessing
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if not multiprocessing.active_children():
                return True
            time.sleep(0.05)
        return not multiprocessing.active_children()

    def test_keyboard_interrupt_reraises_and_reaps_workers(self, params):
        specs = [RunSpec.maintenance(params, rounds=4, seed=s)
                 for s in range(8)]

        def interrupt_after_first(spec, result):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            BatchRunner(jobs=2).run(specs, on_result=interrupt_after_first)
        assert self._await_no_children()

    def test_abandoned_iterator_reaps_workers(self, params):
        specs = [RunSpec.maintenance(params, rounds=4, seed=s)
                 for s in range(8)]
        iterator = BatchRunner(jobs=2).run_iter(specs)
        next(iterator)  # start the pool, consume one result
        iterator.close()  # generator close must terminate + join the pool
        assert self._await_no_children()
