"""Unit tests for the durable content-addressed result store."""

import errno
import sqlite3
import time

import pytest

from repro.analysis import default_parameters
from repro.runner import (
    ChaosSchedule,
    ResultStore,
    RunSpec,
    StoreError,
    StoreVersionError,
    execute,
    store_key,
)
from repro.telemetry import spec_hash


@pytest.fixture(scope="module")
def params():
    return default_parameters(n=4, f=1)


@pytest.fixture(scope="module")
def spec(params):
    return RunSpec.maintenance(params, rounds=2, seed=0)


@pytest.fixture(scope="module")
def result(spec):
    return execute(spec)


def make_store(tmp_path, **kwargs):
    return ResultStore(str(tmp_path / "results.sqlite"), **kwargs)


class TestContentAddressing:
    def test_key_is_stable_and_spec_determined(self, spec):
        assert store_key(spec) == store_key(spec)
        assert store_key(spec) != store_key(spec.with_seed(1))

    def test_key_extends_manifest_hash(self, spec):
        # Manifest lines carry the truncated digest; store rows the full
        # one — they must cross-reference by prefix.
        assert store_key(spec).startswith(spec_hash(spec))


class TestPutGet:
    def test_roundtrip_is_bit_identical(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            loaded = store.get(spec)
        assert loaded.trace.events == result.trace.events

    def test_miss_returns_none(self, tmp_path, spec):
        with make_store(tmp_path) as store:
            assert store.get(spec) is None
            assert spec not in store

    def test_contains_and_len_and_keys(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            assert len(store) == 0
            store.put(spec, result)
            assert spec in store
            assert store.contains(spec)
            assert len(store) == 1
            assert store.keys() == [store_key(spec)]

    def test_put_overwrites_same_spec(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            store.put(spec, result)
            assert len(store) == 1

    def test_survives_reopen(self, tmp_path, spec, result):
        path = str(tmp_path / "durable.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        with ResultStore(path) as store:
            assert store.get(spec).trace.events == result.trace.events

    def test_corrupt_payload_reads_as_miss(self, tmp_path, spec, result):
        path = str(tmp_path / "corrupt.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE results SET payload = ?",
                         (sqlite3.Binary(b"torn bytes"),))
        conn.close()
        with ResultStore(path) as store:
            assert store.get(spec) is None  # the spec simply re-runs


class TestSchemaVersioning:
    def test_create_false_requires_existing_file(self, tmp_path):
        with pytest.raises(StoreError, match="no result store"):
            ResultStore(str(tmp_path / "absent.sqlite"), create=False)

    def test_newer_schema_refused(self, tmp_path, spec, result):
        path = str(tmp_path / "future.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE meta SET value = '999' "
                         "WHERE key = 'schema_version'")
        conn.close()
        with pytest.raises(StoreVersionError, match="v999"):
            ResultStore(path)

    def test_schema_version_property(self, tmp_path):
        with make_store(tmp_path) as store:
            assert store.schema_version == 1


class TestQuarantineLedger:
    def test_quarantine_recorded_most_recent_first(self, tmp_path, spec):
        other = spec.with_seed(9)
        with make_store(tmp_path) as store:
            store.quarantine(spec, failures=3, last_error="boom",
                             traceback_text="tb")
            store.quarantine(other, failures=1, last_error="later")
            records = store.quarantined()
        assert [r["last_error"] for r in records] == ["later", "boom"]
        assert records[1]["failures"] == 3
        assert records[1]["traceback"] == "tb"
        assert records[1]["spec_hash"] == store_key(spec)

    def test_successful_put_clears_quarantine(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.quarantine(spec, failures=2, last_error="flaky")
            store.put(spec, result)
            assert store.quarantined() == []

    def test_quarantine_upserts(self, tmp_path, spec):
        with make_store(tmp_path) as store:
            store.quarantine(spec, failures=1, last_error="first")
            store.quarantine(spec, failures=2, last_error="second")
            records = store.quarantined()
        assert len(records) == 1
        assert records[0]["failures"] == 2


class TestStatusAndGc:
    def test_status_summary(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            store.put(spec.with_seed(1), execute(spec.with_seed(1)))
            store.quarantine(spec.with_seed(2), failures=3, last_error="x")
            status = store.status()
        assert status["results"] == 2
        assert status["quarantined"] == 1
        assert status["by_kind"] == {"maintenance": 2}
        assert status["schema_version"] == 1
        assert status["size_bytes"] > 0
        assert status["oldest_created_at"] <= status["newest_created_at"]

    def test_gc_by_age(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            # Backdate the row so the age cutoff can catch it.
            with store._conn:
                store._conn.execute("UPDATE results SET created_at = ?",
                                    (time.time() - 1000,))
            removed = store.gc(older_than=100)
            assert removed["removed_results"] == 1
            assert len(store) == 0

    def test_gc_clear_quarantine(self, tmp_path, spec):
        with make_store(tmp_path) as store:
            store.quarantine(spec, failures=1, last_error="x")
            removed = store.gc(clear_quarantine=True, vacuum=False)
            assert removed["removed_quarantine"] == 1
            assert store.quarantined() == []

    def test_gc_rejects_negative_age(self, tmp_path):
        with make_store(tmp_path) as store:
            with pytest.raises(ValueError, match="older_than"):
                store.gc(older_than=-1)

    def test_gc_noop_removes_nothing(self, tmp_path, spec, result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            removed = store.gc()
            assert removed == {"removed_results": 0,
                               "removed_quarantine": 0}
            assert len(store) == 1


class TestChaosDiskFull:
    def test_scheduled_write_raises_enospc(self, tmp_path, spec, result):
        chaos = ChaosSchedule(store_full_writes={1})
        with make_store(tmp_path, chaos=chaos) as store:
            store.put(spec, result)  # write 0: fine
            with pytest.raises(OSError) as excinfo:
                store.put(spec.with_seed(1), result)  # write 1: full disk
            assert excinfo.value.errno == errno.ENOSPC
            # The failed write committed nothing; the store stays usable.
            assert len(store) == 1
            store.put(spec.with_seed(2), result)  # write 2: fine again
            assert len(store) == 2


class TestCorruptPayloadAccounting:
    """Corrupt payloads are counted misses, never silent ones."""

    def corrupt_all_rows(self, path):
        conn = sqlite3.connect(path)
        with conn:
            conn.execute("UPDATE results SET payload = ?",
                         (sqlite3.Binary(b"torn bytes"),))
        conn.close()

    def test_corrupt_read_bumps_counter(self, tmp_path, spec, result):
        path = str(tmp_path / "rot.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        self.corrupt_all_rows(path)
        with ResultStore(path) as store:
            assert store.corrupt_reads == 0
            assert store.get(spec) is None
            assert store.corrupt_reads == 1
            # every read of the damaged row counts, not just the first
            assert store.get(spec) is None
            assert store.corrupt_reads == 2
            # a plain cold miss is NOT counted as corruption
            assert store.get(spec.with_seed(99)) is None
            assert store.corrupt_reads == 2

    def test_corrupt_read_increments_telemetry_counter(self, tmp_path, spec,
                                                       result):
        from repro.telemetry import Telemetry, activated

        path = str(tmp_path / "rot.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        self.corrupt_all_rows(path)
        telemetry = Telemetry()
        with activated(telemetry), ResultStore(path) as store:
            assert store.get(spec) is None
        counter = telemetry.registry.counter("resilient.store.corrupt")
        assert counter.value == 1

    def test_no_telemetry_counter_without_active_telemetry(self, tmp_path,
                                                           spec, result):
        from repro.telemetry import Telemetry, activated

        path = str(tmp_path / "rot.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        self.corrupt_all_rows(path)
        with ResultStore(path) as store:  # no ambient telemetry: no crash
            assert store.get(spec) is None
            assert store.corrupt_reads == 1
        telemetry = Telemetry()
        with activated(telemetry):
            pass
        assert telemetry.registry.counter("resilient.store.corrupt").value == 0

    def test_scan_corrupt_and_status_surface_rot(self, tmp_path, spec,
                                                 result):
        path = str(tmp_path / "rot.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
            store.put(spec.with_seed(1), result)
        self.corrupt_all_rows(path)
        with ResultStore(path) as store:
            assert store.scan_corrupt() == 2
            status = store.status()
            assert status["corrupt_payloads"] == 2
            assert status["results"] == 2  # rows still present, just rotten

    def test_healthy_store_reports_zero_corruption(self, tmp_path, spec,
                                                   result):
        with make_store(tmp_path) as store:
            store.put(spec, result)
            assert store.scan_corrupt() == 0
            assert store.status()["corrupt_payloads"] == 0
            assert store.corrupt_reads == 0

    def test_cli_store_status_renders_corruption(self, tmp_path, spec,
                                                 result, capsys):
        from repro.cli import main

        path = str(tmp_path / "rot.sqlite")
        with ResultStore(path) as store:
            store.put(spec, result)
        self.corrupt_all_rows(path)
        assert main(["store", "status", path]) == 0
        out = capsys.readouterr().out
        assert "corrupt_payloads" in out
