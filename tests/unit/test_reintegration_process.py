"""Unit tests for the Section 9.1 reintegration procedure."""

import pytest

from repro.analysis import run_reintegration_scenario
from repro.core import ReintegratingProcess, agreement_bound
from repro.faults import rejoin_time


class TestReintegrationLifecycle:
    def test_process_waits_for_start(self, small_params):
        process = ReintegratingProcess(small_params)
        assert process.awake is False

    def test_rejoins_after_recovery(self, medium_params):
        result = run_reintegration_scenario(medium_params, rounds=10,
                                            recover_after_rounds=3.5, seed=1)
        pid = medium_params.n - 1
        when = rejoin_time(result.trace, pid)
        assert when is not None
        assert when > result.start_times[pid]

    def test_rejoin_happens_within_two_rounds_of_recovery(self, medium_params):
        result = run_reintegration_scenario(medium_params, rounds=10,
                                            recover_after_rounds=3.5, seed=1)
        pid = medium_params.n - 1
        when = rejoin_time(result.trace, pid)
        assert when - result.start_times[pid] <= 2.5 * medium_params.round_length

    def test_recovered_clock_synchronizes_to_the_group(self, medium_params):
        params = medium_params
        result = run_reintegration_scenario(params, rounds=12,
                                            recover_after_rounds=4.5, seed=0)
        pid = params.n - 1
        when = rejoin_time(result.trace, pid)
        assert when is not None
        gamma = agreement_bound(params)
        # After one further round the repaired process must be within gamma of
        # every other nonfaulty process.
        check_from = when + params.round_length
        check_to = result.end_time - params.round_length
        steps = 40
        for index in range(steps + 1):
            t = check_from + index * (check_to - check_from) / steps
            times = result.trace.local_times(t, include_faulty=True)
            others = [v for q, v in times.items() if q != pid]
            assert abs(times[pid] - max(others)) <= gamma + 1e-9 or \
                   abs(times[pid] - min(others)) <= gamma + 1e-9
            assert min(others) - gamma <= times[pid] <= max(others) + gamma

    def test_events_logged_in_order(self, medium_params):
        result = run_reintegration_scenario(medium_params, rounds=10,
                                            recover_after_rounds=3.5, seed=2)
        pid = medium_params.n - 1
        names = [e.name for e in result.trace.events if e.process_id == pid]
        for required in ("reintegration_awake", "reintegration_collecting",
                         "reintegration_adjusted", "reintegration_rejoined"):
            assert required in names
        assert names.index("reintegration_awake") < names.index("reintegration_rejoined")

    def test_recovering_process_counted_faulty(self, medium_params):
        result = run_reintegration_scenario(medium_params, rounds=8,
                                            recover_after_rounds=3.5, seed=0)
        assert medium_params.n - 1 in result.trace.faulty_ids
