"""Unit tests for the repro command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.workload == "lan"
        assert args.n == 7 and args.f == 2
        # rounds defaults to the workload's preset (10 for lan) at runtime.
        assert args.rounds is None
        assert not args.no_trace and args.observe is None
        assert args.checkpoint_every is None and args.horizon is None

    def test_sweep_requires_axis_and_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--axis", "epsilon"])
        args = build_parser().parse_args(
            ["sweep", "--axis", "epsilon", "--values", "0.001", "0.002"])
        assert args.values == ["0.001", "0.002"]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--workload", "mars"])

    def test_runner_flags_on_run_compare_sweep(self):
        for argv in (["run", "--jobs", "2", "--replicate-seeds", "0", "1"],
                     ["compare", "--jobs", "2", "--replicate-seeds", "3"],
                     ["sweep", "--axis", "n", "--values", "7",
                      "--jobs", "4", "--replicate-seeds", "0", "1", "2"]):
            args = build_parser().parse_args(argv)
            assert args.jobs in (2, 4)
            assert all(isinstance(seed, int) for seed in args.replicate_seeds)

    def test_runner_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.jobs == 1
        assert args.replicate_seeds is None


class TestStreamingRun:
    def test_no_trace_run_audits_online_and_passes(self, capsys):
        code = main(["run", "--no-trace", "--observe", "skew,validity",
                     "--rounds", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "streaming (no trace)" in out
        assert "online agreement" in out and "online validity" in out

    def test_no_trace_requires_auditing_observers(self, capsys):
        code = main(["run", "--no-trace", "--observe", "network",
                     "--rounds", "4"])
        assert code == 2
        assert "skew" in capsys.readouterr().err

    def test_partition_heal_rejects_streaming_flags(self, capsys):
        code = main(["run", "--workload", "partition-heal", "--no-trace",
                     "--rounds", "8"])
        assert code == 2
        assert "streaming" in capsys.readouterr().err

    def test_replicated_streaming_errors_exit_cleanly(self, capsys):
        code = main(["run", "--workload", "partition-heal", "--no-trace",
                     "--replicate-seeds", "1", "2"])
        assert code == 2
        assert "streaming" in capsys.readouterr().err

    def test_checkpointed_run_reports_checkpoints(self, capsys):
        code = main(["run", "--no-trace", "--rounds", "5", "--seed", "1",
                     "--checkpoint-every", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "snapshot/restore round trips" in out


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestWorkloadsCommand:
    def test_lists_every_preset(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("lan", "wan", "high-drift", "quiet", "ring-lan",
                     "partition-heal"):
            assert name in out


class TestTopologiesCommand:
    def test_lists_every_generator(self, capsys):
        assert main(["topologies"]) == 0
        out = capsys.readouterr().out
        for name in ("complete", "ring", "star", "grid", "random_gnp",
                     "clustered"):
            assert name in out


class TestRunCommand:
    def test_run_prints_audit_and_succeeds(self, capsys):
        exit_code = main(["run", "--rounds", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "theorem16_agreement" in out
        assert "all claims hold" in out
        assert "skew over time" in out

    def test_run_exports_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        csv_path = tmp_path / "skew.csv"
        exit_code = main(["run", "--rounds", "4", "--seed", "2",
                          "--json", str(json_path), "--csv", str(csv_path)])
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["params"]["n"] == 7
        assert csv_path.read_text().startswith("real_time,skew")

    def test_run_on_quiet_workload(self, capsys):
        assert main(["run", "--workload", "quiet", "--rounds", "4"]) == 0
        assert "all claims hold" in capsys.readouterr().out

    def test_run_on_ring_topology(self, capsys):
        exit_code = main(["run", "--topology", "ring", "--rounds", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "topology ring" in out
        assert "effective envelope" in out
        assert "all claims hold" in out

    def test_run_rejects_bad_topology_spec(self):
        with pytest.raises(ValueError):
            main(["run", "--topology", "moebius", "--rounds", "4"])

    def test_run_partition_heal_workload(self, capsys):
        exit_code = main(["run", "--workload", "partition-heal",
                          "--rounds", "10"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "partition_divergence" in out
        assert "lemma20_heal_round_0" in out
        assert "cross-group divergence over time" in out
        assert "all claims hold" in out


class TestRunReplicated:
    def test_replicated_run_reports_stats_and_audits(self, capsys):
        exit_code = main(["run", "--rounds", "5",
                          "--replicate-seeds", "0", "1", "2"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "replicated over seeds [0, 1, 2]" in out
        assert out.count("pass") >= 3
        assert "ci95=[" in out
        assert "worst agreement" in out
        assert "holds on every seed" in out

    def test_replicated_partition_heal_summary_matches_audits(self, capsys):
        """The summary must not contradict the partition-aware audits."""
        exit_code = main(["run", "--workload", "partition-heal",
                          "--rounds", "10", "--replicate-seeds", "0", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "VIOLATED" not in out
        assert "partition window" in out
        assert out.count("pass") >= 2

    def test_replicated_run_exports_json_and_csv(self, tmp_path, capsys):
        json_path = tmp_path / "replication.json"
        csv_path = tmp_path / "replication.csv"
        exit_code = main(["run", "--rounds", "4",
                          "--replicate-seeds", "0", "1",
                          "--json", str(json_path), "--csv", str(csv_path)])
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert payload["seeds"] == [0, 1]
        assert payload["summary"]["agreement_mean"] > 0
        assert [row["seed"] for row in payload["per_seed"]] == [0, 1]
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "seed,agreement,validity_violation_rate,audit"
        assert len(lines) == 3

    def test_replicated_run_with_jobs_matches_serial(self, capsys):
        assert main(["run", "--rounds", "4", "--replicate-seeds", "0", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "--rounds", "4", "--replicate-seeds", "0", "1",
                     "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # Identical numbers; only the reported job count may differ.
        assert (serial.replace("jobs=1", "jobs=2")
                == parallel)


class TestStartupCommand:
    def test_startup_reports_series_and_limit(self, capsys):
        exit_code = main(["startup", "--rounds", "6", "--spread", "0.5"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "measured B^i" in out
        assert "Lemma 20 limit" in out
        assert "all claims hold" in out


class TestCompareCommand:
    def test_compare_subset_of_algorithms(self, capsys, tmp_path):
        json_path = tmp_path / "comparison.json"
        exit_code = main(["compare", "--rounds", "5",
                          "--algorithms", "welch_lynch", "unsynchronized",
                          "--json", str(json_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "welch_lynch" in out
        rows = json.loads(json_path.read_text())
        assert {row["algorithm"] for row in rows} == {"welch_lynch",
                                                      "unsynchronized"}

    def test_compare_replicated_prints_ci_table(self, capsys, tmp_path):
        json_path = tmp_path / "replicated.json"
        exit_code = main(["compare", "--rounds", "4",
                          "--algorithms", "welch_lynch", "unsynchronized",
                          "--replicate-seeds", "0", "1", "--jobs", "2",
                          "--json", str(json_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "agreement mean" in out and "ci95 low" in out
        rows = json.loads(json_path.read_text())
        assert all("agreement_ci95_high" in row for row in rows)


class TestSweepCommand:
    def test_epsilon_sweep_outputs_table_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        exit_code = main(["sweep", "--axis", "epsilon",
                          "--values", "0.001", "0.002",
                          "--rounds", "4", "--csv", str(csv_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "epsilon" in out and "agreement" in out
        lines = csv_path.read_text().splitlines()
        assert lines[0] == "epsilon,gamma,agreement"
        assert len(lines) == 3

    def test_fault_count_sweep(self, capsys):
        exit_code = main(["sweep", "--axis", "fault-count", "--values", "0", "2",
                          "--rounds", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "fault_count" in out

    def test_topology_sweep(self, capsys):
        exit_code = main(["sweep", "--axis", "topology",
                          "--values", "complete", "ring", "--rounds", "3"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "topology" in out and "diameter" in out
        assert "ring" in out

    def test_sweep_with_jobs_matches_serial_output(self, capsys):
        argv = ["sweep", "--axis", "epsilon", "--values", "0.001", "0.002",
                "--rounds", "3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_replicated_sweep_adds_ci_columns(self, capsys):
        exit_code = main(["sweep", "--axis", "epsilon", "--values", "0.002",
                          "--rounds", "3", "--replicate-seeds", "0", "1"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "agreement_ci95" in out


class TestCertifyCommand:
    def test_certify_prints_chain_and_verifies(self, capsys, tmp_path):
        json_path = tmp_path / "certificate.json"
        exit_code = main(["certify", "-n", "3", "--rounds", "4",
                          "--json", str(json_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "certificate VERIFIED" in out
        assert "lower_bound_achieved" in out
        assert "shift unit" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == 1
        assert payload["n"] == 3
        assert payload["verified"] is True
        assert len(payload["executions"]) == 3

    def test_certify_streaming_base_run(self, capsys):
        exit_code = main(["certify", "-n", "3", "--rounds", "4",
                          "--no-trace"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "streamed base run" in out
        assert "certificate VERIFIED" in out


class TestConformanceCommand:
    def test_small_matrix_passes(self, capsys, tmp_path):
        json_path = tmp_path / "conformance.json"
        exit_code = main(["conformance", "-n", "4", "-f", "1",
                          "--rounds", "3",
                          "--algorithms", "welch_lynch", "unsynchronized",
                          "--fault-kinds", "none", "silent",
                          "--json", str(json_path)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "conformance matrix: 4 cells" in out
        assert "axioms A1-A3 hold on every cell" in out
        payload = json.loads(json_path.read_text())
        assert len(payload) == 4
        assert all(entry["passed"] for entry in payload)
        claims = {check["claim"] for check in payload[0]["checks"]}
        assert "axiom_a3_delay_envelope" in claims

    def test_matrix_with_jobs_matches_serial_output(self, capsys):
        argv = ["conformance", "-n", "4", "-f", "1", "--rounds", "3",
                "--algorithms", "welch_lynch", "--fault-kinds", "none"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel.replace("jobs=2", "jobs=1") == serial

    def test_unknown_algorithm_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["conformance", "--algorithms",
                                       "quantum_sync"])


class TestTightnessSweep:
    def test_tightness_axis_brackets_the_achieved_skew(self, capsys):
        exit_code = main(["sweep", "--axis", "tightness",
                          "--values", "3", "5", "--rounds", "4"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "lower_bound" in out and "gamma_over_lower" in out


class TestNetParser:
    def test_net_run_defaults(self):
        args = build_parser().parse_args(["net", "run"])
        assert args.command == "net" and args.action == "run"
        assert args.n == 4 and args.f is None
        assert args.duration == 5.0 and args.rounds is None
        assert args.pings == 5 and args.samples == 200

    def test_net_serve_requires_id_and_hosts(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["net", "serve", "--id", "0"])
        args = build_parser().parse_args(
            ["net", "serve", "--id", "1",
             "--hosts", "127.0.0.1:9001", "127.0.0.1:9002"])
        assert args.id == 1
        assert args.hosts == ["127.0.0.1:9001", "127.0.0.1:9002"]

    def test_net_serve_rejects_malformed_host(self, capsys):
        exit_code = main(["net", "serve", "--id", "0",
                          "--hosts", "localhost", "127.0.0.1:9002"])
        assert exit_code == 2
        assert "HOST:PORT" in capsys.readouterr().err


class TestEngineKillSwitchScoping:
    """--no-vectorize / --no-round-engine must not leak across main() calls.

    Both levers are process-global (a module toggle plus an environment
    flag), so one programmatic ``main([...])`` call disabling an engine
    must not leave the next call in the same process running degraded.
    """

    @pytest.fixture
    def spy(self, monkeypatch):
        import os

        import repro.cli as cli
        from repro.sim import roundengine, vectorized

        seen = {}

        def fake_run(args):
            seen["vectorize_disabled"] = vectorized._vectorize_disabled
            seen["roundengine_disabled"] = roundengine._roundengine_disabled
            seen["env_vectorize"] = os.environ.get("REPRO_NO_VECTORIZE")
            seen["env_roundengine"] = os.environ.get("REPRO_NO_ROUNDENGINE")
            return 0

        monkeypatch.setitem(cli._COMMANDS, "run", fake_run)
        return seen

    @pytest.fixture
    def baseline(self):
        import os

        from repro.sim import roundengine, vectorized

        return {
            "vectorize_disabled": vectorized._vectorize_disabled,
            "roundengine_disabled": roundengine._roundengine_disabled,
            "env_vectorize": os.environ.get("REPRO_NO_VECTORIZE"),
            "env_roundengine": os.environ.get("REPRO_NO_ROUNDENGINE"),
        }

    def current(self):
        import os

        from repro.sim import roundengine, vectorized

        return {
            "vectorize_disabled": vectorized._vectorize_disabled,
            "roundengine_disabled": roundengine._roundengine_disabled,
            "env_vectorize": os.environ.get("REPRO_NO_VECTORIZE"),
            "env_roundengine": os.environ.get("REPRO_NO_ROUNDENGINE"),
        }

    def test_no_vectorize_scoped_to_one_invocation(self, spy, baseline):
        assert main(["run", "--no-vectorize"]) == 0
        # during the command: both levers thrown for the vectorized engine
        assert spy["vectorize_disabled"] is True
        assert spy["env_vectorize"] == "1"
        # the round engine was untouched
        assert spy["roundengine_disabled"] == baseline["roundengine_disabled"]
        # after the command: everything restored
        assert self.current() == baseline

    def test_no_round_engine_scoped_to_one_invocation(self, spy, baseline):
        assert main(["run", "--no-round-engine"]) == 0
        assert spy["roundengine_disabled"] is True
        assert spy["env_roundengine"] == "1"
        assert spy["vectorize_disabled"] == baseline["vectorize_disabled"]
        assert self.current() == baseline

    def test_second_main_call_runs_with_engines_reenabled(self, spy,
                                                          baseline):
        # The acceptance regression: back-to-back programmatic main() calls
        # in one process; the second must see both engines enabled again.
        assert main(["run", "--no-vectorize", "--no-round-engine"]) == 0
        assert spy["vectorize_disabled"] is True
        assert spy["roundengine_disabled"] is True
        assert main(["run"]) == 0
        assert spy["vectorize_disabled"] is False
        assert spy["roundengine_disabled"] is False
        assert spy["env_vectorize"] is None
        assert spy["env_roundengine"] is None
        assert self.current() == baseline

    def test_preexisting_env_value_restored(self, spy, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_NO_VECTORIZE", "legacy")
        from repro.sim import vectorized

        saved_toggle = vectorized._vectorize_disabled
        assert main(["run", "--no-vectorize"]) == 0
        # inside: overwritten with "1"; after: the caller's value is back
        assert spy["env_vectorize"] == "1"
        assert os.environ["REPRO_NO_VECTORIZE"] == "legacy"
        assert vectorized._vectorize_disabled == saved_toggle

    def test_restored_even_when_the_command_raises(self, monkeypatch,
                                                   baseline):
        import repro.cli as cli

        def exploding_run(args):
            raise RuntimeError("mid-command failure")

        monkeypatch.setitem(cli._COMMANDS, "run", exploding_run)
        with pytest.raises(RuntimeError, match="mid-command failure"):
            main(["run", "--no-vectorize", "--no-round-engine"])
        assert self.current() == baseline
