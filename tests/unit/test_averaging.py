"""Unit tests for the fault-tolerant averaging functions."""

import pytest

from repro.core import FaultTolerantMean, FaultTolerantMidpoint, PlainMean, convergence_rate


class TestMidpoint:
    def test_name(self):
        assert FaultTolerantMidpoint().name == "midpoint"

    def test_average_is_midpoint_of_reduced_range(self):
        fn = FaultTolerantMidpoint()
        assert fn.average([0, 1, 2, 3, 4, 100, -100], f=1) == 2.0

    def test_outliers_cannot_escape_honest_range(self):
        fn = FaultTolerantMidpoint()
        honest = [10.0, 10.1, 10.2, 10.3, 10.4]
        result = fn.average(honest + [1e9, -1e9], f=2)
        assert 10.0 <= result <= 10.4

    def test_convergence_rate_is_half(self):
        assert FaultTolerantMidpoint().guaranteed_convergence_rate(7, 2) == 0.5


class TestMean:
    def test_name(self):
        assert FaultTolerantMean().name == "mean"

    def test_average_excludes_extremes(self):
        fn = FaultTolerantMean()
        assert fn.average([0, 2, 4, 100, -100], f=1) == pytest.approx(2.0)

    def test_convergence_rate_formula(self):
        fn = FaultTolerantMean()
        assert fn.guaranteed_convergence_rate(7, 2) == pytest.approx(2 / 3)
        assert fn.guaranteed_convergence_rate(20, 2) == pytest.approx(2 / 16)
        assert fn.guaranteed_convergence_rate(10, 0) == 0.0

    def test_convergence_rate_requires_n_over_2f(self):
        with pytest.raises(ValueError):
            FaultTolerantMean().guaranteed_convergence_rate(4, 2)


class TestPlainMean:
    def test_not_fault_tolerant(self):
        fn = PlainMean()
        honest = [1.0, 1.0, 1.0]
        assert fn.average(honest + [1000.0], f=1) > 100.0

    def test_rate_infinite_with_faults(self):
        assert PlainMean().guaranteed_convergence_rate(7, 2) == float("inf")
        assert PlainMean().guaranteed_convergence_rate(7, 0) == 0.0


class TestConvergenceRateLookup:
    def test_by_name(self):
        assert convergence_rate("midpoint", 7, 2) == 0.5
        assert convergence_rate("mean", 7, 2) == pytest.approx(2 / 3)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            convergence_rate("median", 7, 2)
