"""Unit tests for repro.analysis.workloads (named workload presets)."""

import pytest

from repro.analysis import (
    Workload,
    build_parameters,
    get_workload,
    measured_agreement,
    run_workload,
    workload_names,
)
from repro.core import agreement_bound
from repro.sim import (
    AdversarialDelayModel,
    ContentionDelayModel,
    FixedDelayModel,
    TruncatedGaussianDelayModel,
    UniformDelayModel,
)


class TestRegistry:
    def test_names_are_sorted_and_non_empty(self):
        names = workload_names()
        assert names == tuple(sorted(names))
        assert "lan" in names
        assert "quiet" in names

    def test_get_workload_returns_preset(self):
        workload = get_workload("lan")
        assert workload.delta == 0.01
        assert workload.fault_kind == "two_faced"

    def test_unknown_name_is_a_helpful_error(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("datacenter")

    def test_every_preset_builds_feasible_parameters(self):
        for name in workload_names():
            params = build_parameters(get_workload(name))
            assert params.is_feasible()


class TestDelayModelConstruction:
    @pytest.mark.parametrize("name, expected", [
        ("lan", UniformDelayModel),
        ("wan", TruncatedGaussianDelayModel),
        ("flaky-ethernet", ContentionDelayModel),
        ("adversarial-delay", AdversarialDelayModel),
        ("quiet", FixedDelayModel),
    ])
    def test_delay_model_family(self, name, expected):
        workload = get_workload(name)
        params = build_parameters(workload)
        assert isinstance(workload.build_delay_model(params), expected)

    def test_unknown_delay_kind_rejected(self):
        bad = Workload(name="bad", description="", rho=1e-4, delta=0.01,
                       epsilon=0.002, delay_kind="quantum")
        params = build_parameters(get_workload("lan"))
        with pytest.raises(ValueError):
            bad.build_delay_model(params)


class TestRunWorkload:
    @pytest.mark.parametrize("name", ["lan", "high-drift", "quiet"])
    def test_workloads_synchronize_within_their_own_bound(self, name):
        result = run_workload(get_workload(name), rounds=6, seed=1)
        params = result.params
        start = result.tmax0 + params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=100)
        assert skew <= agreement_bound(params)

    def test_wan_floor_is_larger_than_lan_floor(self):
        lan = run_workload(get_workload("lan"), rounds=6, seed=3)
        wan = run_workload(get_workload("wan"), rounds=6, seed=3)
        skew_of = lambda r: measured_agreement(  # noqa: E731 - tiny local helper
            r.trace, r.tmax0 + r.params.round_length, r.end_time, samples=100)
        # A 10x larger delay uncertainty must show up as worse agreement.
        assert skew_of(wan) > skew_of(lan)

    def test_quiet_workload_has_no_faulty_processes(self):
        result = run_workload(get_workload("quiet"), rounds=4, seed=0)
        assert list(result.trace.faulty_ids) == []
        assert result.trace.stats.dropped == 0
