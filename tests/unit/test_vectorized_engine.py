"""Unit tests for the struct-of-arrays batch engine's routing and gates.

The bit-identity of the engine's *output* is the property suite's job
(``tests/property/test_vectorized_parity.py``); here we pin the plumbing:
which specs the engine claims, how the kill switches compose, how the batch
runner groups replicas, what telemetry a vectorized batch emits, and the
degenerate single-seed confidence interval of :func:`repro.runner.replicate`.
"""

import math
import os
import subprocess
import sys

import pytest

from repro.analysis.experiments import default_parameters
from repro.analysis.statistics import summarize
from repro.runner import BatchRunner, RunSpec, execute, replicate
from repro.sim import vectorized
from repro.telemetry import Telemetry


def _params(n=7, f=2):
    return default_parameters(n=n, f=f)


def _spec(**overrides):
    options = dict(rounds=3, fault_kind="two_faced", record_trace=False,
                   observers=("skew", "validity"))
    options.update(overrides)
    return RunSpec.maintenance(_params(), **options)


@pytest.fixture
def engine_enabled():
    """Make sure the module toggle is on for the test, then restore it."""
    previous = vectorized.vectorized_available()
    vectorized.use_vectorized(True)
    yield
    vectorized.use_vectorized(previous)


class TestSupportsSpec:
    def test_streaming_maintenance_is_supported(self):
        assert vectorized.supports_spec(_spec())

    @pytest.mark.parametrize("overrides", [
        {"record_trace": True},          # trace recording is serial-only
        {"delay": "gaussian"},           # unsupported delay family
        {"delay": "adversarial"},
        {"clock_kind": "piecewise"},     # drifting-rate ensembles
        {"clock_kind": "walk"},
        {"fault_kind": "random_noise"},  # per-replica rng divergence
        {"fault_kind": "omission"},
        {"checkpoint_every": 1.0},       # snapshot/restore is serial-only
    ])
    def test_unsupported_features_are_rejected(self, overrides):
        assert not vectorized.supports_spec(_spec(**overrides))

    def test_topology_is_rejected(self):
        spec = _spec(topology="ring")
        assert not vectorized.supports_spec(spec)

    def test_startup_kind_is_rejected(self):
        spec = RunSpec.startup(_params(), rounds=3)
        assert not vectorized.supports_spec(spec)


class TestShouldVectorize:
    def test_spec_opt_out_wins(self, engine_enabled):
        import dataclasses
        spec = dataclasses.replace(_spec(), vectorize=False)
        assert not vectorized.should_vectorize(spec)

    def test_global_toggle(self):
        previous = vectorized.vectorized_available()
        try:
            vectorized.use_vectorized(False)
            assert not vectorized.vectorized_available()
            assert not vectorized.should_vectorize(_spec())
            vectorized.use_vectorized(True)
            assert vectorized.should_vectorize(_spec())
        finally:
            vectorized.use_vectorized(previous)

    def test_unsupported_spec_never_vectorizes(self, engine_enabled):
        assert not vectorized.should_vectorize(_spec(record_trace=True))


class TestExecuteBatch:
    def test_empty_batch(self):
        assert vectorized.execute_batch([]) == []

    def test_mixed_specs_are_rejected(self):
        spec = _spec()
        other = _spec(rounds=4)
        with pytest.raises(ValueError, match="identical modulo seed"):
            vectorized.execute_batch([spec.with_seed(0), other.with_seed(1)])

    def test_disabled_engine_falls_back_to_serial(self):
        spec = _spec()
        previous = vectorized.vectorized_available()
        try:
            vectorized.use_vectorized(False)
            results = vectorized.execute_batch(
                [spec.with_seed(s) for s in range(2)])
        finally:
            vectorized.use_vectorized(previous)
        serial = [execute(spec.with_seed(s)) for s in range(2)]
        for a, b in zip(serial, results):
            assert a.trace.stats == b.trace.stats
            assert a.online("skew").max_skew == b.online("skew").max_skew

    def test_duplicate_seeds_share_one_replica(self, engine_enabled):
        if not vectorized.vectorized_available():
            pytest.skip("numpy not installed")
        spec = _spec()
        results = vectorized.execute_batch(
            [spec.with_seed(0), spec.with_seed(1), spec.with_seed(0)])
        assert results[0].trace.stats == results[2].trace.stats
        assert results[0].online("skew").max_skew == \
            results[2].online("skew").max_skew


class TestBatchRunnerRouting:
    def test_replicated_group_is_vectorized(self, engine_enabled):
        if not vectorized.vectorized_available():
            pytest.skip("numpy not installed")
        telemetry = Telemetry()
        spec = _spec()
        specs = [spec.with_seed(s) for s in range(4)]
        results = BatchRunner(telemetry=telemetry).run(specs)
        assert len(results) == 4
        assert telemetry.registry.value("runner.vectorized_batches") == 1
        assert telemetry.registry.value("runner.vectorized_replicas") == 4

    def test_single_spec_stays_serial_unless_forced(self, engine_enabled):
        if not vectorized.vectorized_available():
            pytest.skip("numpy not installed")
        import dataclasses
        spec = _spec()
        telemetry = Telemetry()
        BatchRunner(telemetry=telemetry).run([spec])
        assert telemetry.registry.value("runner.vectorized_batches") == 0
        forced = dataclasses.replace(spec, vectorize=True)
        telemetry = Telemetry()
        BatchRunner(telemetry=telemetry).run([forced])
        assert telemetry.registry.value("runner.vectorized_batches") == 1
        assert telemetry.registry.value("runner.vectorized_replicas") == 1

    def test_opted_out_group_stays_serial(self, engine_enabled):
        import dataclasses
        spec = dataclasses.replace(_spec(), vectorize=False)
        telemetry = Telemetry()
        results = BatchRunner(telemetry=telemetry).run(
            [spec.with_seed(s) for s in range(3)])
        assert len(results) == 3
        assert telemetry.registry.value("runner.vectorized_batches") == 0


class TestSingleSeedReplication:
    def test_summarize_single_value_has_degenerate_ci(self):
        stats = summarize([0.25])
        assert stats.count == 1
        assert stats.ci95_low == stats.ci95_high == stats.mean == 0.25
        assert not math.isnan(stats.ci95_low)

    def test_replicate_single_seed_point_estimate(self):
        rep = replicate(_spec(), [0])
        stats = rep.agreement
        assert stats.count == 1
        assert stats.ci95_low == stats.ci95_high == stats.mean
        assert not math.isnan(stats.ci95_low)
        assert not math.isnan(rep.validity_violation_rate.ci95_high)


class TestNoNumpyEndToEnd:
    def test_cli_replicated_vectorize_without_numpy(self):
        """REPRO_NO_NUMPY=1 end-to-end: --vectorize degrades to serial."""
        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(root, "src") + os.pathsep
                   + os.environ.get("PYTHONPATH", ""))
        argv = [sys.executable, "-m", "repro", "run", "--no-trace",
                "--observe", "skew,validity", "--replicate-seeds", "0", "1",
                "--vectorize"]
        with_numpy = subprocess.run(argv, env=env, cwd=root,
                                    capture_output=True, text=True)
        assert with_numpy.returncode == 0, with_numpy.stderr
        env["REPRO_NO_NUMPY"] = "1"
        without_numpy = subprocess.run(argv, env=env, cwd=root,
                                       capture_output=True, text=True)
        assert without_numpy.returncode == 0, without_numpy.stderr
        assert with_numpy.stdout == without_numpy.stdout
