"""Unit tests for the Lemma 1-3 numerical validators."""

import pytest

from repro.clocks import (
    ConstantRateClock,
    PerfectClock,
    SinusoidalDriftClock,
    check_rate_bounds,
    lemma1_holds,
    lemma2a_holds,
    lemma2b_holds,
    lemma3_holds,
    sample_times,
)


def fast_clock(rho=1e-3):
    return ConstantRateClock(offset=0.0, rate=1.0 + rho, rho=rho)


def slow_clock(rho=1e-3):
    return ConstantRateClock(offset=0.0, rate=1.0 / (1.0 + rho), rho=rho)


class TestSampleTimes:
    def test_endpoints_and_count(self):
        times = sample_times(0.0, 10.0, 5)
        assert times[0] == 0.0 and times[-1] == 10.0 and len(times) == 5

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            sample_times(0.0, 1.0, 1)


class TestRateBounds:
    def test_within_band(self):
        clock = SinusoidalDriftClock(amplitude=5e-5, rho=1e-4)
        assert check_rate_bounds(clock, sample_times(0.0, 2000.0, 50))

    def test_violation_detected(self):
        # Lie about rho so the actual rate exceeds the claimed band.
        clock = ConstantRateClock(rate=1.0009, rho=1e-3)
        clock.rho = 1e-6
        assert not check_rate_bounds(clock, [0.0, 1.0], tolerance=0.0)


class TestLemma1:
    def test_holds_for_extreme_rates(self):
        for clock in (fast_clock(), slow_clock(), PerfectClock()):
            assert lemma1_holds(clock, 0.0, 100.0)

    def test_order_of_arguments_irrelevant(self):
        assert lemma1_holds(fast_clock(), 100.0, 0.0)

    def test_violation_detected(self):
        clock = ConstantRateClock(rate=1.0009, rho=1e-3)
        clock.rho = 1e-6  # claimed band is now tighter than the true rate
        assert not lemma1_holds(clock, 0.0, 1000.0)


class TestLemma2:
    def test_part_a(self):
        assert lemma2a_holds(fast_clock(), 5.0, 250.0)
        assert lemma2a_holds(slow_clock(), 5.0, 250.0)

    def test_part_b(self):
        assert lemma2b_holds(fast_clock(), slow_clock(), 0.0, 500.0)

    def test_part_b_violation_detected(self):
        fast = ConstantRateClock(rate=1.0009, rho=1e-3)
        slow = ConstantRateClock(rate=1.0 / 1.0009, rho=1e-3)
        fast.rho = slow.rho = 1e-7
        assert not lemma2b_holds(fast, slow, 0.0, 1000.0)


class TestLemma3:
    def test_holds_for_offset_clocks(self):
        a = ConstantRateClock(offset=0.00, rate=1.0, rho=1e-4)
        b = ConstantRateClock(offset=0.01, rate=1.0, rho=1e-4)
        # inverses differ by exactly 0.01 everywhere.
        assert lemma3_holds(a, b, 0.0, 100.0, alpha=0.0101)

    def test_vacuous_when_hypothesis_fails(self):
        a = ConstantRateClock(offset=0.0, rate=1.0, rho=1e-4)
        b = ConstantRateClock(offset=5.0, rate=1.0, rho=1e-4)
        # alpha is far smaller than the actual separation: hypothesis fails,
        # so the check reports True (the lemma claims nothing).
        assert lemma3_holds(a, b, 0.0, 10.0, alpha=0.001)
