"""Unit tests for the System runner and the ProcessContext capabilities."""

import pytest

from repro.clocks import ConstantRateClock, PerfectClock
from repro.sim import FixedDelayModel, Process, System, UniformDelayModel


class Recorder(Process):
    """Test process that records every interrupt it receives."""

    def __init__(self):
        self.started = []
        self.messages = []
        self.timers = []

    def on_start(self, ctx):
        self.started.append(ctx.now)

    def on_message(self, ctx, sender, payload):
        self.messages.append((ctx.now, sender, payload))

    def on_timer(self, ctx, payload=None):
        self.timers.append((ctx.now, payload))


class Echoer(Process):
    """Broadcasts a greeting at start and acknowledges every message."""

    def on_start(self, ctx):
        ctx.broadcast(("hello", ctx.process_id))

    def on_message(self, ctx, sender, payload):
        if payload[0] == "hello" and sender != ctx.process_id:
            ctx.send(sender, ("ack", ctx.process_id))


def make_system(processes, delta=0.01, seed=0, clocks=None):
    n = len(processes)
    clocks = clocks or [PerfectClock() for _ in range(n)]
    return System(processes, clocks, delay_model=FixedDelayModel(delta), seed=seed)


class TestConstruction:
    def test_mismatched_clocks_rejected(self):
        with pytest.raises(ValueError):
            System([Recorder()], [PerfectClock(), PerfectClock()])

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            System([], [])

    def test_initial_corrections_length_checked(self):
        with pytest.raises(ValueError):
            System([Recorder()], [PerfectClock()], initial_corrections=[0.0, 0.0])


class TestStartAndTimers:
    def test_start_delivery(self):
        procs = [Recorder(), Recorder()]
        system = make_system(procs)
        system.schedule_start(0, 1.0)
        system.schedule_start(1, 2.0)
        system.run_until(5.0)
        assert procs[0].started == [1.0]
        assert procs[1].started == [2.0]

    def test_start_at_logical_time_uses_clock_inverse(self):
        procs = [Recorder()]
        clock = ConstantRateClock(offset=5.0, rate=1.0, rho=1e-6)
        system = System(procs, [clock], delay_model=FixedDelayModel(0.01))
        real = system.schedule_start_at_logical(0, 8.0)
        assert real == pytest.approx(3.0)
        system.run_until(10.0)
        assert procs[0].started == [pytest.approx(3.0)]

    def test_start_at_logical_respects_initial_correction(self):
        procs = [Recorder()]
        system = System(procs, [PerfectClock()], delay_model=FixedDelayModel(0.01),
                        initial_corrections=[2.0])
        real = system.schedule_start_at_logical(0, 10.0)
        assert real == pytest.approx(8.0)

    def test_timer_in_past_not_scheduled(self):
        class TimerAtStart(Process):
            def __init__(self):
                self.result = None
                self.fired = False

            def on_start(self, ctx):
                self.result = ctx.set_timer(ctx.local_time() - 1.0)

            def on_timer(self, ctx, payload=None):
                self.fired = True

        proc = TimerAtStart()
        system = make_system([proc])
        system.schedule_start(0, 1.0)
        system.run_until(10.0)
        assert proc.result is False
        assert proc.fired is False

    def test_timer_fires_at_physical_time(self):
        class OneTimer(Process):
            def __init__(self):
                self.fired_at = None

            def on_start(self, ctx):
                ctx.set_timer_physical(4.0, payload="wake")

            def on_timer(self, ctx, payload=None):
                self.fired_at = (ctx.now, payload)

        proc = OneTimer()
        system = make_system([proc])
        system.schedule_start(0, 1.0)
        system.run_until(10.0)
        assert proc.fired_at == (pytest.approx(4.0), "wake")


class TestMessaging:
    def test_broadcast_reaches_everyone_including_self(self):
        procs = [Echoer(), Recorder(), Recorder()]
        system = make_system(procs)
        system.schedule_start(0, 0.0)
        system.run_until(1.0)
        # Both recorders got the hello; the echoer also got its own hello.
        assert len(procs[1].messages) == 1
        assert len(procs[2].messages) == 1
        trace = system.trace()
        assert trace.stats.sent == 3

    def test_messages_take_the_modelled_delay(self):
        procs = [Echoer(), Recorder()]
        system = make_system(procs, delta=0.25)
        system.schedule_start(0, 1.0)
        system.run_until(5.0)
        arrival_time, sender, payload = procs[1].messages[0]
        assert arrival_time == pytest.approx(1.25)
        assert sender == 0 and payload == ("hello", 0)

    def test_unknown_recipient_rejected(self):
        class BadSender(Process):
            def on_start(self, ctx):
                ctx.send(99, "boom")

        system = make_system([BadSender()])
        system.schedule_start(0, 0.0)
        with pytest.raises(KeyError):
            system.run_until(1.0)

    def test_send_divergent(self):
        class TwoFaced(Process):
            def on_start(self, ctx):
                ctx.send_divergent({1: "left", 2: "right"})

        procs = [TwoFaced(), Recorder(), Recorder()]
        system = make_system(procs)
        system.schedule_start(0, 0.0)
        system.run_until(1.0)
        assert procs[1].messages[0][2] == "left"
        assert procs[2].messages[0][2] == "right"


class TestCorrectionTracking:
    def test_adjust_correction_is_recorded(self):
        class Adjuster(Process):
            def on_start(self, ctx):
                ctx.adjust_correction(0.5, round_index=0)

        system = make_system([Adjuster()])
        system.schedule_start(0, 2.0)
        trace = system.run_until(3.0)
        assert trace.adjustments(0) == [0.5]
        assert trace.local_time(0, 2.5) == pytest.approx(3.0)

    def test_set_initial_correction_before_adjustments(self):
        class Idle(Process):
            pass

        system = make_system([Idle()])
        system.set_initial_correction(0, 1.5)
        trace = system.run_until(1.0)
        assert trace.local_time(0, 1.0) == pytest.approx(2.5)

    def test_set_initial_correction_after_adjustment_rejected(self):
        class Adjuster(Process):
            def on_start(self, ctx):
                ctx.adjust_correction(0.5)

        system = make_system([Adjuster()])
        system.schedule_start(0, 0.0)
        system.run_until(1.0)
        with pytest.raises(RuntimeError):
            system.set_initial_correction(0, 1.0)


class TestRunControl:
    def test_run_until_is_incremental(self):
        procs = [Recorder()]
        system = make_system(procs)
        system.schedule_start(0, 5.0)
        system.run_until(1.0)
        assert procs[0].started == []
        system.run_until(10.0)
        assert procs[0].started == [5.0]

    def test_crashed_processes_receive_nothing(self):
        procs = [Echoer(), Recorder()]
        system = make_system(procs)
        system.mark_crashed(1)
        system.schedule_start(0, 0.0)
        system.run_until(1.0)
        assert procs[1].messages == []
        assert 1 in system.faulty_ids()

    def test_unmark_crashed_resumes_delivery(self):
        procs = [Echoer(), Recorder()]
        system = make_system(procs)
        system.mark_crashed(1)
        system.unmark_crashed(1)
        system.schedule_start(0, 0.0)
        system.run_until(1.0)
        assert len(procs[1].messages) == 1

    def test_max_events_guard(self):
        class PingPong(Process):
            def on_start(self, ctx):
                ctx.send(ctx.process_id, "again")

            def on_message(self, ctx, sender, payload):
                ctx.send(ctx.process_id, "again")

        system = make_system([PingPong()])
        system.schedule_start(0, 0.0)
        with pytest.raises(RuntimeError):
            system.run_until(1e9, max_events=100)

    def test_deterministic_given_seed(self):
        def run(seed):
            procs = [Echoer(), Echoer(), Echoer()]
            system = System(procs, [PerfectClock() for _ in range(3)],
                            delay_model=UniformDelayModel(0.01, 0.002), seed=seed)
            for pid in range(3):
                system.schedule_start(pid, 0.0)
            trace = system.run_until(1.0)
            return [(e.real_time, e.process_id, e.name) for e in trace.events]

        assert run(7) == run(7)

    def test_replace_process(self):
        procs = [Echoer(), Recorder()]
        system = make_system(procs)
        replacement = Recorder()
        system.replace_process(0, replacement)
        system.schedule_start(0, 0.5)
        system.run_until(1.0)
        assert replacement.started == [0.5]
