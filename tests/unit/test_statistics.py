"""Unit tests for repro.analysis.statistics (replication and summary stats)."""

import math

import pytest

from repro.analysis import (
    SummaryStats,
    agreement_across_seeds,
    agreement_margin_report,
    bound_margin,
    compare_samples,
    replicate_metric,
    summarize,
)
from repro.core import agreement_bound


class TestSummarize:
    def test_single_value(self):
        stats = summarize([3.0])
        assert stats.count == 1
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == stats.median == 3.0
        assert stats.ci95() == (3.0, 3.0)

    def test_known_sample(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert stats.mean == pytest.approx(3.0)
        assert stats.median == 3.0
        assert stats.minimum == 1.0
        assert stats.maximum == 5.0
        # Sample std of 1..5 is sqrt(2.5).
        assert stats.std == pytest.approx(math.sqrt(2.5))

    def test_even_sample_median_is_midpoint(self):
        stats = summarize([1.0, 2.0, 3.0, 10.0])
        assert stats.median == 2.5

    def test_ci_contains_mean_and_shrinks_with_sample_size(self):
        small = summarize([1.0, 2.0, 3.0])
        large = summarize([1.0, 2.0, 3.0] * 20)
        assert small.ci95_low <= small.mean <= small.ci95_high
        assert large.ci95_high - large.ci95_low < small.ci95_high - small.ci95_low

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_constant_sample_has_zero_std(self):
        stats = summarize([7.0] * 10)
        assert stats.std == 0.0
        assert stats.ci95() == (7.0, 7.0)


class TestReplicate:
    def test_metric_called_once_per_seed(self):
        calls = []

        def metric(seed):
            calls.append(seed)
            return float(seed)

        stats = replicate_metric(metric, seeds=[1, 2, 3, 4])
        assert calls == [1, 2, 3, 4]
        assert stats.mean == pytest.approx(2.5)

    def test_requires_at_least_one_seed(self):
        with pytest.raises(ValueError):
            replicate_metric(lambda seed: 0.0, seeds=[])


class TestBoundMargin:
    def test_far_below_bound(self):
        stats = summarize([0.1, 0.2])
        assert bound_margin(stats, 1.0) == pytest.approx(0.8)

    def test_violation_is_negative(self):
        stats = summarize([1.5])
        assert bound_margin(stats, 1.0) < 0

    def test_bound_must_be_positive(self):
        with pytest.raises(ValueError):
            bound_margin(summarize([1.0]), 0.0)


class TestCompareSamples:
    def test_identical_samples(self):
        report = compare_samples([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert report["difference"] == pytest.approx(0.0)
        assert report["ratio"] == pytest.approx(1.0)
        assert report["cohens_d"] == pytest.approx(0.0)

    def test_shifted_samples(self):
        report = compare_samples([2.0, 3.0, 4.0], [1.0, 2.0, 3.0])
        assert report["difference"] == pytest.approx(1.0)
        assert report["cohens_d"] > 0

    def test_zero_denominator_gives_inf_ratio(self):
        report = compare_samples([1.0], [0.0])
        assert report["ratio"] == float("inf")


class TestAgreementAcrossSeeds:
    def test_every_seed_stays_under_gamma(self, medium_params):
        stats = agreement_across_seeds(medium_params, seeds=range(4), rounds=6)
        assert stats.count == 4
        assert stats.maximum <= agreement_bound(medium_params)
        assert stats.minimum > 0

    def test_margin_report_fields(self, medium_params):
        report = agreement_margin_report(medium_params, seeds=range(3), rounds=6)
        assert report["gamma"] == agreement_bound(medium_params)
        assert 0 < report["worst"] <= report["gamma"]
        assert 0 < report["margin"] <= 1
        assert report["mean"] <= report["worst"]
