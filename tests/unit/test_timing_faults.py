"""Unit tests for repro.faults.timing (flooding and stale-replay attackers)."""

import pytest

from repro.analysis import measured_agreement, run_maintenance_scenario
from repro.clocks import make_clock_ensemble
from repro.core import WelchLynchProcess, agreement_bound
from repro.faults import FloodingAttacker, StaleReplayAttacker
from repro.sim import ContentionDelayModel, System, UniformDelayModel


def run_with_attackers(params, attacker_factory, rounds=8, seed=0,
                       delay_model=None):
    """n - f correct processes plus f attackers built by the factory."""
    correct = [WelchLynchProcess(params, max_rounds=rounds)
               for _ in range(params.n - params.f)]
    attackers = [attacker_factory() for _ in range(params.f)]
    clocks = make_clock_ensemble(params.n, rho=params.rho, beta=params.beta,
                                 seed=seed)
    system = System(correct + attackers, clocks,
                    delay_model=delay_model or UniformDelayModel(params.delta,
                                                                 params.epsilon),
                    seed=seed)
    starts = system.schedule_all_starts_at_logical(params.T0)
    end = params.T0 + rounds * params.round_length + 1.0
    trace = system.run_until(end)
    settle = min(t for pid, t in starts.items()
                 if pid < params.n - params.f) + params.round_length
    return trace, settle, end


class TestFloodingAttacker:
    def test_construction_validation(self, medium_params):
        with pytest.raises(ValueError):
            FloodingAttacker(medium_params, burst=0)
        with pytest.raises(ValueError):
            FloodingAttacker(medium_params, interval=-1.0)

    def test_is_marked_faulty(self, medium_params):
        assert FloodingAttacker(medium_params).is_faulty

    def test_flooding_generates_far_more_traffic_than_correct_processes(
            self, medium_params):
        params = medium_params
        trace, settle, end = run_with_attackers(
            params, lambda: FloodingAttacker(params, burst=4), rounds=6, seed=1)
        per_sender = trace.stats.per_process_sent
        correct_traffic = max(per_sender.get(pid, 0)
                              for pid in range(params.n - params.f))
        attacker_traffic = min(per_sender.get(pid, 0)
                               for pid in range(params.n - params.f, params.n))
        assert attacker_traffic > 3 * correct_traffic

    def test_agreement_survives_flooding(self, medium_params):
        params = medium_params
        trace, settle, end = run_with_attackers(
            params, lambda: FloodingAttacker(params, burst=4), rounds=8, seed=2)
        grid = [settle + i * (end - settle) / 120 for i in range(121)]
        assert trace.max_skew(grid) <= agreement_bound(params)

    def test_flooding_under_contention_breaks_the_delivery_assumption(
            self, medium_params):
        """Flooding a lossy medium voids the reliable-delivery assumption.

        The Theorem 16 guarantee assumes every message is delivered (A3).  A
        flooder on a contention-prone medium causes correct processes' round
        messages to be dropped, and once more than f entries per round are
        missing or stale the guarantee genuinely no longer applies — the skew
        exceeds what the same attack achieves on a reliable medium.  This is a
        negative control documenting the assumption boundary, not a bug.
        """
        params = medium_params
        contention = ContentionDelayModel(params.delta, params.epsilon,
                                          window=0.002, threshold=3,
                                          drop_probability=0.3)
        lossy_trace, settle, end = run_with_attackers(
            params, lambda: FloodingAttacker(params, burst=3), rounds=8, seed=3,
            delay_model=contention)
        reliable_trace, settle_r, end_r = run_with_attackers(
            params, lambda: FloodingAttacker(params, burst=3), rounds=8, seed=3)
        grid = [settle + i * (end - settle) / 120 for i in range(121)]
        grid_r = [settle_r + i * (end_r - settle_r) / 120 for i in range(121)]
        assert lossy_trace.stats.dropped > 0
        assert reliable_trace.max_skew(grid_r) <= agreement_bound(params)
        assert lossy_trace.max_skew(grid) > reliable_trace.max_skew(grid_r)

    def test_max_messages_caps_the_flood(self, medium_params):
        params = medium_params
        attacker_factory = lambda: FloodingAttacker(params, burst=2,  # noqa: E731
                                                    max_messages=10)
        trace, _, _ = run_with_attackers(params, attacker_factory, rounds=6, seed=4)
        for pid in range(params.n - params.f, params.n):
            assert trace.stats.per_process_sent.get(pid, 0) <= 10 + 2 * params.n


class TestStaleReplayAttacker:
    def test_construction_validation(self, medium_params):
        with pytest.raises(ValueError):
            StaleReplayAttacker(medium_params, staleness=0.0)

    def test_is_marked_faulty(self, medium_params):
        assert StaleReplayAttacker(medium_params).is_faulty

    def test_replays_previously_seen_round_messages(self, medium_params):
        params = medium_params
        attackers = []

        def factory():
            attacker = StaleReplayAttacker(params)
            attackers.append(attacker)
            return attacker

        run_with_attackers(params, factory, rounds=6, seed=5)
        assert all(attacker.replayed > 0 for attacker in attackers)

    def test_agreement_survives_stale_replays(self, medium_params):
        params = medium_params
        trace, settle, end = run_with_attackers(
            params, lambda: StaleReplayAttacker(params), rounds=8, seed=6)
        grid = [settle + i * (end - settle) / 120 for i in range(121)]
        assert trace.max_skew(grid) <= agreement_bound(params)

    def test_max_replays_caps_the_attack(self, medium_params):
        params = medium_params
        attacker = StaleReplayAttacker(params, max_replays=3)
        run_with_attackers(params, lambda: attacker, rounds=6, seed=7)
        assert attacker.replayed <= 3 + params.n  # one timer batch may overshoot slightly

    def test_through_the_scenario_builder_fault_hook(self, medium_params):
        """Timing attackers compose with the standard scenario machinery."""
        params = medium_params
        factory = lambda p, r: WelchLynchProcess(p, max_rounds=r)  # noqa: E731
        result = run_maintenance_scenario(params, rounds=6, fault_kind="silent",
                                          seed=8, correct_process_factory=factory)
        start = result.tmax0 + params.round_length
        assert measured_agreement(result.trace, start, result.end_time,
                                  samples=100) <= agreement_bound(params)
