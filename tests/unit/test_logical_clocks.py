"""Unit tests for correction histories, logical clock views, amortized corrections."""

import pytest

from repro.clocks import (
    AmortizedCorrection,
    ConstantRateClock,
    CorrectionHistory,
    LogicalClockView,
    PerfectClock,
    apply_amortized_schedule,
)


class TestCorrectionHistory:
    def test_initial_correction(self):
        history = CorrectionHistory(0.25)
        assert history.initial_correction == 0.25
        assert history.current() == 0.25
        assert history.adjustments == []

    def test_apply_accumulates(self):
        history = CorrectionHistory(0.0)
        assert history.apply(1.0, 0.5, round_index=0) == 0.5
        assert history.apply(2.0, -0.2, round_index=1) == pytest.approx(0.3)
        assert history.adjustments == [0.5, -0.2]

    def test_correction_at_lookup(self):
        history = CorrectionHistory(0.0)
        history.apply(1.0, 1.0, 0)
        history.apply(3.0, 1.0, 1)
        assert history.correction_at(0.5) == 0.0
        assert history.correction_at(1.0) == 1.0
        assert history.correction_at(2.9) == 1.0
        assert history.correction_at(3.0) == 2.0
        assert history.correction_at(100.0) == 2.0

    def test_out_of_order_application_rejected(self):
        history = CorrectionHistory(0.0)
        history.apply(5.0, 0.1, 0)
        with pytest.raises(ValueError):
            history.apply(4.0, 0.1, 1)

    def test_correction_for_round(self):
        history = CorrectionHistory(0.0)
        history.apply(1.0, 0.5, round_index=3)
        assert history.correction_for_round(3) == 0.5
        assert history.correction_for_round(99) is None

    def test_events_include_initial(self):
        history = CorrectionHistory(1.5)
        assert len(history.events) == 1
        assert history.events[0].round_index == -1


class TestLogicalClockView:
    def make_view(self):
        clock = ConstantRateClock(offset=2.0, rate=1.0, rho=1e-4)
        history = CorrectionHistory(0.5)
        history.apply(10.0, 1.0, 0)
        return LogicalClockView(clock, history)

    def test_local_time_before_and_after_adjustment(self):
        view = self.make_view()
        assert view.local_time(5.0) == pytest.approx(5.0 + 2.0 + 0.5)
        assert view.local_time(12.0) == pytest.approx(12.0 + 2.0 + 1.5)

    def test_logical_clock_value_per_index(self):
        view = self.make_view()
        # index 0: initial logical clock; index 1: after the round-0 adjustment.
        assert view.logical_clock_value(0, 12.0) == pytest.approx(12.0 + 2.0 + 0.5)
        assert view.logical_clock_value(1, 12.0) == pytest.approx(12.0 + 2.0 + 1.5)

    def test_logical_clock_inverse(self):
        view = self.make_view()
        T = 20.0
        t = view.logical_clock_inverse(1, T)
        assert view.logical_clock_value(1, t) == pytest.approx(T)

    def test_bad_index_raises(self):
        view = self.make_view()
        with pytest.raises(IndexError):
            view.logical_clock_value(5, 0.0)
        with pytest.raises(IndexError):
            view.logical_clock_inverse(-1, 0.0)

    def test_number_of_logical_clocks(self):
        assert self.make_view().number_of_logical_clocks() == 2

    def test_accessors(self):
        view = self.make_view()
        assert isinstance(view.physical_clock, ConstantRateClock)
        assert isinstance(view.history, CorrectionHistory)


class TestAmortizedCorrection:
    def test_ramp(self):
        correction = AmortizedCorrection(adjustment=-0.4, start_local_time=10.0,
                                         spread_interval=2.0)
        assert correction.effective_offset(9.0) == 0.0
        assert correction.effective_offset(11.0) == pytest.approx(-0.2)
        assert correction.effective_offset(12.0) == pytest.approx(-0.4)
        assert correction.effective_offset(100.0) == pytest.approx(-0.4)

    def test_adjusted_time_monotone_when_spread_exceeds_negative_adjustment(self):
        correction = AmortizedCorrection(adjustment=-0.5, start_local_time=0.0,
                                         spread_interval=1.0)
        assert correction.is_monotone()
        times = [i * 0.01 for i in range(300)]
        adjusted = [correction.adjusted_time(t) for t in times]
        assert all(b >= a for a, b in zip(adjusted, adjusted[1:]))

    def test_non_monotone_detected(self):
        correction = AmortizedCorrection(adjustment=-2.0, start_local_time=0.0,
                                         spread_interval=1.0)
        assert not correction.is_monotone()

    def test_nonpositive_interval_rejected(self):
        with pytest.raises(ValueError):
            AmortizedCorrection(adjustment=0.1, start_local_time=0.0,
                                spread_interval=0.0)

    def test_schedule_application(self):
        corrections = [AmortizedCorrection(1.0, 0.0, 1.0),
                       AmortizedCorrection(-0.5, 2.0, 1.0)]
        raw = [0.0, 0.5, 1.5, 2.5, 4.0]
        adjusted = apply_amortized_schedule(raw, corrections)
        assert adjusted[0] == 0.0
        assert adjusted[1] == pytest.approx(0.5 + 0.5)
        assert adjusted[2] == pytest.approx(1.5 + 1.0)
        assert adjusted[3] == pytest.approx(2.5 + 1.0 - 0.25)
        assert adjusted[4] == pytest.approx(4.0 + 1.0 - 0.5)
