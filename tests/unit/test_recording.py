"""Unit tests for repro.sim.recording (message-level recording and A3 auditing)."""

import random

import pytest

from repro.analysis import run_maintenance_scenario
from repro.sim import (
    ContentionDelayModel,
    FixedDelayModel,
    MessageRecord,
    NetworkRecorder,
    RecordingDelayModel,
    UniformDelayModel,
    delay_statistics,
    drop_rate,
    envelope_violations,
    per_link_counts,
    per_sender_counts,
)
from repro.topology.base import Topology


class TestRecordingDelayModel:
    def test_records_every_send_and_preserves_delays(self):
        rng = random.Random(0)
        inner = FixedDelayModel(0.02)
        recording = RecordingDelayModel(inner)
        for sender in range(3):
            assert recording.delay(sender, 0, 1.0, rng) == 0.02
        assert len(recording.records) == 3
        assert all(record.delay == 0.02 for record in recording.records)
        assert recording.envelope() == inner.envelope()

    def test_records_drops(self):
        rng = random.Random(4)
        inner = ContentionDelayModel(0.01, 0.002, window=1.0, threshold=1,
                                     drop_probability=1.0)
        recording = RecordingDelayModel(inner)
        recording.delay(0, 1, 0.0, rng)
        recording.delay(1, 2, 0.0001, rng)
        assert drop_rate(recording.records) == pytest.approx(0.5)
        assert len(recording.delivered()) == 1

    def test_clear_forgets_history(self):
        recording = RecordingDelayModel(FixedDelayModel(0.01))
        recording.delay(0, 1, 0.0, random.Random(0))
        recording.clear()
        assert recording.records == []

    def test_exposes_delta_epsilon_for_bound_formulas(self):
        recording = RecordingDelayModel(UniformDelayModel(0.01, 0.002))
        assert recording.delta == 0.01
        assert recording.epsilon == 0.002


class TestAuditHelpers:
    def _records(self):
        return [
            MessageRecord(sender=0, recipient=1, send_time=0.0, delay=0.010),
            MessageRecord(sender=0, recipient=2, send_time=0.0, delay=0.011),
            MessageRecord(sender=1, recipient=0, send_time=0.1, delay=0.009),
            MessageRecord(sender=1, recipient=0, send_time=0.2, delay=None),
        ]

    def test_envelope_violations_empty_when_within_a3(self):
        assert envelope_violations(self._records(), delta=0.01, epsilon=0.002) == []

    def test_envelope_violations_finds_out_of_spec_delays(self):
        records = self._records() + [
            MessageRecord(sender=2, recipient=0, send_time=0.3, delay=0.05)]
        bad = envelope_violations(records, delta=0.01, epsilon=0.002)
        assert len(bad) == 1
        assert bad[0].delay == 0.05

    def test_delay_statistics(self):
        stats = delay_statistics(self._records())
        assert stats["count"] == 3
        assert stats["min"] == 0.009
        assert stats["max"] == 0.011
        assert stats["mean"] == pytest.approx(0.01)

    def test_delay_statistics_empty(self):
        assert delay_statistics([])["count"] == 0

    def test_per_link_and_per_sender_counts(self):
        records = self._records()
        assert per_link_counts(records)[(1, 0)] == 2
        assert per_sender_counts(records) == {0: 2, 1: 2}

    def test_drop_rate_empty_is_zero(self):
        assert drop_rate([]) == 0.0

    def test_delivery_time_property(self):
        delivered = MessageRecord(0, 1, 1.0, 0.01)
        dropped = MessageRecord(0, 1, 1.0, None)
        assert delivered.delivery_time == pytest.approx(1.01)
        assert dropped.delivery_time is None
        assert dropped.dropped and not delivered.dropped


class TestNetworkRecorder:
    """The observer-pipeline recorder: one record per end-to-end message."""

    def _ring(self, n, drop=0.0):
        edges = [(i, (i + 1) % n) for i in range(n)]
        drops = {edge: drop for edge in edges} if drop else None
        return Topology(n, edges, name="ring", drop_probability=drops)

    def test_complete_graph_matches_delay_model_recording(self, medium_params):
        # On the complete graph the two recorders see exactly the same
        # stream: one delay draw per message.
        inner = RecordingDelayModel(
            UniformDelayModel(medium_params.delta, medium_params.epsilon))
        recorder = NetworkRecorder()
        result = run_maintenance_scenario(medium_params, rounds=4,
                                          fault_kind="two_faced",
                                          delay=inner, seed=5,
                                          observers=[recorder])
        assert len(recorder.records) == len(inner.records)
        assert [(r.sender, r.recipient, r.send_time)
                for r in recorder.records] == \
            [(r.sender, r.recipient, r.send_time) for r in inner.records]
        # The observer's delay is (delivery - send): the end-to-end
        # definition, equal to the raw draw up to one float rounding.
        for observed, drawn in zip(recorder.records, inner.records):
            assert observed.delay == pytest.approx(drawn.delay, abs=1e-15)
        assert envelope_violations(recorder.records, medium_params.delta,
                                   medium_params.epsilon) == []

    def test_relayed_messages_recorded_once(self, medium_params):
        # On a ring every non-adjacent pair relays; the wrapper-style
        # recorder logs one record per *hop*, the observer one per message.
        inner = RecordingDelayModel(
            UniformDelayModel(medium_params.delta, medium_params.epsilon))
        recorder = NetworkRecorder()
        result = run_maintenance_scenario(medium_params, rounds=3,
                                          fault_kind=None, delay=inner,
                                          seed=5,
                                          topology=self._ring(medium_params.n),
                                          observers=[recorder])
        stats = result.trace.stats
        assert stats.relayed > 0
        assert len(recorder.records) == stats.sent
        # Per-hop recording necessarily over-counts under relay.
        assert len(inner.records) > stats.sent

    def test_topology_drops_counted_exactly_once(self, medium_params):
        # Per-link drop probabilities fire *after* the delay model draws, so
        # the wrapper recorder cannot see them; the observer must count every
        # loss exactly once, agreeing with the system's own counters.
        recorder = NetworkRecorder()
        result = run_maintenance_scenario(
            medium_params, rounds=4, fault_kind=None, seed=5,
            topology=self._ring(medium_params.n, drop=0.2),
            observers=[recorder])
        stats = result.trace.stats
        dropped = sum(1 for record in recorder.records if record.dropped)
        assert stats.dropped > 0
        assert dropped == stats.dropped
        assert len(recorder.records) == stats.sent
        assert drop_rate(recorder.records) == stats.dropped / stats.sent

    def test_end_to_end_delay_includes_relay_accumulation(self, medium_params):
        recorder = NetworkRecorder()
        result = run_maintenance_scenario(medium_params, rounds=3,
                                          fault_kind=None, seed=5,
                                          topology=self._ring(medium_params.n),
                                          observers=[recorder])
        # End-to-end envelope on the ring stretches past one hop's delta+eps:
        # some delivered record must exceed the single-hop maximum.
        single_hop_max = medium_params.delta + medium_params.epsilon
        assert any(record.delay > single_hop_max
                   for record in recorder.delivered())
        # ... and the audit helpers accept the observer's records directly.
        stats = delay_statistics(recorder.delivered())
        assert stats["count"] == len(recorder.delivered())
        assert set(per_sender_counts(recorder.records)) == \
            set(range(medium_params.n))

    def test_clear_forgets_records(self):
        recorder = NetworkRecorder()
        recorder.on_send(0, 1, 0.0, 0.01)
        recorder.on_send(1, 2, 0.0, None)
        assert drop_rate(recorder.records) == pytest.approx(0.5)
        recorder.clear()
        assert recorder.records == []

    def test_stats_snapshot(self):
        recorder = NetworkRecorder()
        recorder.on_send(0, 1, 0.0, 0.010)
        recorder.on_send(1, 2, 0.0, 0.020)
        recorder.on_send(2, 0, 0.0, None)  # dropped
        stats = recorder.stats()
        assert stats["sent"] == 3
        assert stats["delivered"] == 2
        assert stats["dropped"] == 1
        assert stats["drop_rate"] == pytest.approx(1 / 3)
        assert stats["delay_min"] == pytest.approx(0.010)
        assert stats["delay_max"] == pytest.approx(0.020)
        assert stats["delay_mean"] == pytest.approx(0.015)

    def test_stats_empty_recorder(self):
        stats = NetworkRecorder().stats()
        assert stats["sent"] == 0
        assert stats["drop_rate"] == 0.0

    def test_stats_agrees_with_module_helpers(self, medium_params):
        # stats() is the single snapshot the CLI and the telemetry manifests
        # consume; it must agree with the per-record module helpers.
        recorder = NetworkRecorder()
        run_maintenance_scenario(
            medium_params, rounds=3, fault_kind=None, seed=5,
            topology=self._ring(medium_params.n, drop=0.2),
            observers=[recorder])
        stats = recorder.stats()
        assert stats["sent"] == len(recorder.records)
        assert stats["drop_rate"] == pytest.approx(drop_rate(recorder.records))
        summary = delay_statistics(recorder.records)
        assert stats["delay_mean"] == pytest.approx(summary["mean"])
        assert stats["delivered"] == summary["count"]


class TestEndToEndAudit:
    def test_full_run_respects_assumption_a3(self, medium_params):
        recording = RecordingDelayModel(
            UniformDelayModel(medium_params.delta, medium_params.epsilon))
        result = run_maintenance_scenario(medium_params, rounds=5,
                                          fault_kind="two_faced",
                                          delay=recording, seed=2)
        assert result.trace.stats.sent == len(recording.records)
        assert envelope_violations(recording.records, medium_params.delta,
                                   medium_params.epsilon) == []
        # Fully connected broadcasts: every (sender, recipient) pair is used.
        assert len(per_link_counts(recording.records)) == medium_params.n ** 2
