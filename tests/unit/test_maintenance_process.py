"""Unit tests for the Welch-Lynch maintenance algorithm process."""

import pytest

from repro.analysis import adjustment_statistics, round_start_spreads, run_maintenance_scenario
from repro.clocks import PerfectClock, make_clock_ensemble
from repro.core import (
    FaultTolerantMean,
    Phase,
    RoundMessage,
    WelchLynchProcess,
    adjustment_bound,
)
from repro.sim import FixedDelayModel, System


def run_fault_free(params, rounds=4, seed=0, **kwargs):
    return run_maintenance_scenario(params, rounds=rounds, fault_kind=None,
                                     seed=seed, **kwargs)


class TestRoundStructure:
    def test_phases_alternate(self, small_params):
        result = run_fault_free(small_params, rounds=3)
        for pid in result.trace.nonfaulty_ids:
            names = [e.name for e in result.trace.events
                     if e.process_id == pid and e.name in ("broadcast", "update")]
            assert names == ["broadcast", "update"] * 3

    def test_round_times_follow_T0_plus_iP(self, small_params):
        result = run_fault_free(small_params, rounds=3)
        events = result.trace.events_named("broadcast", process_id=0)
        round_times = [e.data["round_time"] for e in events]
        expected = [small_params.round_time(i) for i in range(3)]
        assert round_times == pytest.approx(expected)

    def test_each_round_broadcasts_to_everyone(self, small_params):
        result = run_fault_free(small_params, rounds=2)
        # n processes * n recipients * rounds messages.
        assert result.trace.stats.sent == small_params.n ** 2 * 2

    def test_max_rounds_stops_the_algorithm(self, small_params):
        result = run_fault_free(small_params, rounds=2)
        for pid in result.trace.nonfaulty_ids:
            assert len(result.trace.adjustments(pid)) == 2

    def test_updates_record_average_and_adjustment(self, small_params):
        result = run_fault_free(small_params, rounds=1)
        update = result.trace.events_named("update", process_id=0)[0]
        assert "average" in update.data and "adjustment" in update.data
        assert update.data["round_index"] == 0


class TestAdjustments:
    def test_adjustments_respect_theorem4a_bound(self, small_params):
        result = run_fault_free(small_params, rounds=5)
        stats = adjustment_statistics(result.trace)
        assert stats.max_abs <= adjustment_bound(small_params) + 1e-9

    def test_driftfree_identical_clocks_need_no_correction(self, driftfree_params):
        params = driftfree_params
        n = params.n
        processes = [WelchLynchProcess(params, max_rounds=2) for _ in range(n)]
        clocks = [PerfectClock(offset=0.0) for _ in range(n)]
        system = System(processes, clocks, delay_model=FixedDelayModel(params.delta))
        system.schedule_all_starts_at_logical(params.T0)
        trace = system.run_until(3 * params.round_length)
        for pid in range(n):
            for adj in trace.adjustments(pid):
                assert adj == pytest.approx(0.0, abs=1e-12)

    def test_spread_clocks_converge(self, small_params):
        result = run_fault_free(small_params, rounds=6)
        spreads = round_start_spreads(result.trace)
        assert spreads[5] < spreads[0]


class TestVariants:
    def test_mean_averaging_also_converges(self, small_params):
        result = run_fault_free(small_params, rounds=5,
                                averaging=FaultTolerantMean())
        spreads = round_start_spreads(result.trace)
        assert spreads[4] < spreads[0]

    def test_stagger_spreads_broadcast_real_times(self, small_params):
        sigma = 0.005
        plain = run_fault_free(small_params, rounds=3, seed=1)
        staggered = run_fault_free(small_params, rounds=3, seed=1,
                                   stagger_interval=sigma)
        def spread_of_round(result, index):
            times = [e.real_time for e in result.trace.events_named("broadcast")
                     if e.data["round_index"] == index]
            return max(times) - min(times)
        assert spread_of_round(staggered, 1) > spread_of_round(plain, 1)
        # The staggered variant still synchronizes.
        spreads = round_start_spreads(staggered.trace)
        assert spreads[2] < 3 * small_params.beta + (small_params.n - 1) * sigma

    def test_label_mentions_averaging(self, small_params):
        assert "midpoint" in WelchLynchProcess(small_params).label()


class TestMessageHandling:
    def test_arrival_times_recorded_per_sender(self, small_params):
        params = small_params
        process = WelchLynchProcess(params)

        class FakeCtx:
            process_id = 0
            n = params.n
            process_ids = range(params.n)
            def local_time(self):
                return 42.0

        process.on_message(FakeCtx(), 3, RoundMessage(round_time=params.T0))
        assert process.arr[3] == 42.0

    def test_initial_state(self, small_params):
        process = WelchLynchProcess(small_params)
        assert process.flag is Phase.BCAST
        assert process.round_time == small_params.T0
        assert process.round_index == 0
        assert process.arr == {}
