"""Unit tests for repro.telemetry: metrics, tracing, manifests, reports.

The contracts under test:

* **metrics** — counters add, gauges keep the max, histograms merge
  bucket-wise; ``snapshot``/``merge`` make worker totals equal serial totals;
  ``delta`` isolates one run's contribution;
* **tracing** — spans nest, close on exception, and export valid Chrome
  trace-event JSON;
* **manifests** — one JSON line per run, stable spec hashes, strict reads;
* **report** — the aggregates `telemetry report` renders.
"""

import json

import pytest

from repro.telemetry import (
    Telemetry,
    activated,
    get_active,
    set_active,
    span,
    spec_hash,
)
from repro.telemetry.manifest import (
    append_manifest,
    build_manifest,
    read_manifests,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report import format_report, summarize
from repro.telemetry.tracing import Tracer


class TestCounter:
    def test_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_merge_adds(self):
        a, b = Counter("c"), Counter("c")
        a.inc(3)
        b.inc(4)
        a.merge_state(b.state())
        assert a.value == 7


class TestGauge:
    def test_high_water_retained(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.high_water == 5

    def test_merge_keeps_max(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(10)
        a.set(1)
        b.set(7)
        a.merge_state(b.state())
        assert a.value == 7  # max of currents
        assert a.high_water == 10


class TestHistogram:
    def test_observe_buckets_and_extrema(self):
        hist = Histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.min == 0.05 and hist.max == 5.0
        assert hist.mean == pytest.approx((0.05 + 0.5 + 5.0) / 3)

    def test_merge_bucketwise(self):
        a = Histogram("h", buckets=(0.1, 1.0))
        b = Histogram("h", buckets=(0.1, 1.0))
        a.observe(0.05)
        b.observe(0.5)
        b.observe(2.0)
        a.merge_state(b.state())
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_mismatched_buckets(self):
        a = Histogram("h", buckets=(0.1, 1.0))
        b = Histogram("h", buckets=(0.5,))
        with pytest.raises(ValueError, match="bucket mismatch"):
            a.merge_state(b.state())


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_name_means_one_thing(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_snapshot_merge_equals_serial(self):
        # Two "workers" and one serial registry doing the same work: after
        # merging the worker snapshots, counter totals and gauge high-waters
        # must be identical to serial (the BatchRunner jobs=2 invariant).
        serial = MetricsRegistry()
        workers = [MetricsRegistry(), MetricsRegistry()]
        for index, worker in enumerate(workers):
            for registry in (serial, worker):
                registry.counter("events").inc(10 * (index + 1))
                registry.gauge("depth").set(5 - index)
                registry.histogram("wall", buckets=(0.1, 1.0)).observe(0.5)
        parent = MetricsRegistry()
        for worker in workers:
            parent.merge(worker.snapshot())
        assert parent.value("events") == serial.value("events") == 30
        assert parent.gauge("depth").high_water == \
            serial.gauge("depth").high_water == 5
        assert parent.histogram("wall").count == \
            serial.histogram("wall").count == 2

    def test_snapshot_is_picklable_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.histogram("h").observe(0.2)
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_delta_isolates_one_run(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(100)
        registry.counter("untouched").inc(5)
        baseline = registry.snapshot()
        registry.counter("events").inc(40)
        registry.gauge("depth").set(3)
        delta = registry.delta(baseline)
        assert delta["events"]["value"] == 40
        assert "untouched" not in delta
        assert delta["depth"]["value"] == 3

    def test_format_renders_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("sim.events").inc(7)
        registry.gauge("sim.depth").set(2)
        text = registry.format()
        assert "sim.events" in text and "sim.depth" in text
        assert "7" in text


class TestTracer:
    def test_spans_nest_and_record_args(self):
        tracer = Tracer()
        with tracer.span("outer", k=1):
            with tracer.span("inner"):
                pass
        records = tracer.records
        assert [r.name for r in records] == ["inner", "outer"]
        assert records[0].depth == 1 and records[1].depth == 0
        assert records[1].args == {"k": 1}

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        assert len(tracer) == 1
        assert tracer._depth == 0

    def test_chrome_trace_is_valid(self, tmp_path):
        tracer = Tracer()
        with tracer.span("phase", n=3, label="x"):
            pass
        path = tmp_path / "trace.json"
        tracer.write_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        (event,) = loaded["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "phase"
        assert event["dur"] >= 0
        assert event["args"] == {"n": 3, "label": "x"}

    def test_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                pass
        tree = tracer.tree()
        lines = tree.splitlines()
        assert lines[0].startswith("parent")
        assert lines[1].startswith("  child")


class TestActiveTelemetry:
    def test_module_span_is_noop_when_inactive(self):
        assert get_active() is None
        with span("anything", k=1):
            pass  # must not raise, must not record anywhere

    def test_activated_scopes_and_restores(self):
        telemetry = Telemetry()
        with activated(telemetry):
            assert get_active() is telemetry
            with span("inside"):
                pass
        assert get_active() is None
        assert len(telemetry.tracer) == 1

    def test_set_active_returns_previous(self):
        telemetry = Telemetry()
        assert set_active(telemetry) is None
        assert set_active(None) is telemetry

    def test_memory_probe_disabled_by_default(self):
        telemetry = Telemetry()
        with telemetry.memory_probe() as probe:
            pass
        assert probe["peak"] is None

    def test_memory_probe_measures_when_enabled(self):
        telemetry = Telemetry(track_memory=True)
        with telemetry.memory_probe() as probe:
            _ = [0] * 50_000
        assert probe["peak"] is not None and probe["peak"] > 0


class _FakeParams:
    n = 7


class _FakeSpec:
    """Just enough of a RunSpec for manifest assembly."""

    kind = "maintenance"
    seed = 3
    rounds = 5
    params = _FakeParams()

    def describe(self):
        return "maintenance:n=7:seed=3"

    def __repr__(self):
        return "FakeSpec(n=7, seed=3)"


class TestManifest:
    def test_spec_hash_stable_and_short(self):
        assert spec_hash(_FakeSpec()) == spec_hash(_FakeSpec())
        assert len(spec_hash(_FakeSpec())) == 16

    def test_build_minimal_record(self):
        record = build_manifest(_FakeSpec(), outcome="ok", wall_seconds=0.25)
        assert record["spec"] == "maintenance:n=7:seed=3"
        assert record["kind"] == "maintenance"
        assert record["n"] == 7 and record["seed"] == 3
        assert record["outcome"] == "ok"
        assert record["wall_seconds"] == 0.25

    def test_error_and_metrics_fields(self):
        record = build_manifest(_FakeSpec(), outcome="budget_exceeded",
                                wall_seconds=1.0, error="boom",
                                metrics={"events": {"kind": "counter",
                                                    "value": 9}})
        assert record["error"] == "boom"
        assert record["metrics"]["events"]["value"] == 9

    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        first = build_manifest(_FakeSpec(), wall_seconds=0.1)
        second = build_manifest(_FakeSpec(), outcome="error", wall_seconds=0.2)
        append_manifest(path, first)
        append_manifest(path, second)
        assert read_manifests(path) == [first, second]

    def test_read_rejects_corrupt_lines_with_location(self, tmp_path):
        path = tmp_path / "manifest.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match=r":2"):
            read_manifests(str(path))

    def test_telemetry_emit_keeps_and_persists(self, tmp_path):
        path = str(tmp_path / "manifest.jsonl")
        telemetry = Telemetry(manifest_path=path)
        record = build_manifest(_FakeSpec(), wall_seconds=0.1)
        telemetry.emit_manifest(record)
        assert telemetry.manifests == [record]
        assert read_manifests(path) == [record]


def _record(spec="s", wall=1.0, events=1000, outcome="ok",
            dropped=0, sent=100):
    return {"spec": spec, "spec_hash": "abc", "outcome": outcome,
            "wall_seconds": wall, "events": events,
            "messages": {"sent": sent, "dropped": dropped, "unroutable": 0}}


class TestReport:
    def test_summarize_aggregates(self):
        records = [_record("a", wall=1.0, events=1000),
                   _record("b", wall=2.0, events=1000, dropped=50),
                   _record("c", wall=0.5, events=0, outcome="error")]
        summary = summarize(records, slowest=2)
        assert summary["runs"] == 3
        assert summary["outcomes"] == {"ok": 2, "error": 1}
        assert summary["wall_total"] == pytest.approx(3.5)
        assert summary["events_total"] == 2000
        assert summary["events_per_s"]["max"] == pytest.approx(1000.0)
        assert summary["drop_rate_max"] == pytest.approx(0.5)
        # Slowest-first, truncated to the requested count.
        assert [row["spec"] for row in summary["slowest"]] == ["b", "a"]

    def test_format_report_renders(self):
        summary = summarize([_record()])
        text = format_report(summary)
        assert "runs: 1" in text
        assert "slowest cells:" in text

    def test_empty_records(self):
        summary = summarize([])
        assert summary["runs"] == 0
        assert format_report(summary)
