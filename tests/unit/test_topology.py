"""Unit tests for the repro.topology package (graphs, specs, routing)."""

import pytest

from repro.topology import (
    Router,
    Topology,
    bfs_routes,
    build_topology,
    clustered,
    cluster_groups,
    complete,
    delay_envelope,
    describe_topologies,
    grid,
    make_topology,
    parse_topology_spec,
    random_gnp,
    ring,
    star,
    topology_names,
)


class TestTopologyBasics:
    def test_rejects_self_loops_and_bad_nodes(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 0)])
        with pytest.raises(ValueError):
            Topology(3, [(0, 5)])
        with pytest.raises(ValueError):
            Topology(0, [])

    def test_links_are_undirected_and_canonical(self):
        topology = Topology(4, [(2, 1), (1, 2), (0, 3)])
        assert topology.links() == [(0, 3), (1, 2)]
        assert topology.has_link(1, 2) and topology.has_link(2, 1)
        assert not topology.has_link(0, 1)
        assert topology.neighbors(1) == (2,)

    def test_overrides_validate_against_existing_links(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 1)], extra_delay={(1, 2): 0.001})
        with pytest.raises(ValueError):
            Topology(3, [(0, 1)], drop_probability={(0, 1): 1.5})
        topology = Topology(3, [(0, 1)], extra_delay={(1, 0): 0.002},
                            drop_probability={(0, 1): 0.25})
        # Overrides are symmetric regardless of key orientation.
        assert topology.extra_delay(0, 1) == topology.extra_delay(1, 0) == 0.002
        assert topology.drop_probability(1, 0) == 0.25
        assert topology.has_lossy_links

    def test_components_and_connectivity(self):
        topology = Topology(5, [(0, 1), (1, 2), (3, 4)])
        assert topology.components() == [[0, 1, 2], [3, 4]]
        assert not topology.is_connected()
        assert ring(5).is_connected()

    def test_components_respect_a_link_filter(self):
        topology = complete(4)
        # Filter out every link crossing {0,1} | {2,3}: partition detection.
        cut = lambda u, v: (u < 2) == (v < 2)  # noqa: E731
        assert topology.components(link_up=cut) == [[0, 1], [2, 3]]

    def test_diameter(self):
        assert complete(6).diameter() == 1
        assert ring(6).diameter() == 3
        assert ring(7).diameter() == 3
        assert star(8).diameter() == 2


class TestGenerators:
    def test_complete_shape(self):
        topology = complete(5)
        assert topology.is_complete
        assert topology.link_count == 10
        assert all(topology.degree(p) == 4 for p in range(5))

    def test_ring_shape(self):
        topology = ring(7)
        assert topology.link_count == 7
        assert all(topology.degree(p) == 2 for p in range(7))
        with pytest.raises(ValueError):
            ring(2)

    def test_star_shape(self):
        topology = star(6, hub=2)
        assert topology.degree(2) == 5
        assert all(topology.degree(p) == 1 for p in range(6) if p != 2)

    def test_grid_shape(self):
        topology = grid(6, cols=3)
        # 2x3 grid: 3 vertical + 4 horizontal links... row-major 0..5.
        assert topology.has_link(0, 1) and topology.has_link(0, 3)
        assert not topology.has_link(2, 3)  # row wrap must not link
        assert topology.is_connected()
        assert grid(7).is_connected()  # ragged last row still connected

    def test_random_gnp_is_seed_deterministic(self):
        a = random_gnp(12, p=0.3, seed=42)
        b = random_gnp(12, p=0.3, seed=42)
        c = random_gnp(12, p=0.3, seed=43)
        assert a.links() == b.links()
        assert a == b
        # Different seeds draw different graphs (overwhelmingly likely for
        # n=12; fixed seeds make this deterministic).
        assert a.links() != c.links()

    def test_random_gnp_connectivity_stitching(self):
        # p=0 yields no edges; the connector must still produce one component.
        topology = random_gnp(6, p=0.0, seed=0)
        assert topology.is_connected()
        unstitched = random_gnp(6, p=0.0, seed=0, connect=False)
        assert not unstitched.is_connected()

    def test_clustered_shape_and_groups(self):
        topology = clustered(7, clusters=2, bridges=2)
        groups = cluster_groups(7, 2)
        assert groups == [[0, 1, 2, 3], [4, 5, 6]]
        # Intra-cluster complete:
        assert topology.has_link(0, 3) and topology.has_link(4, 6)
        # Exactly the two bridge links cross the boundary:
        crossing = [(u, v) for u, v in topology.links()
                    if (u in groups[0]) != (v in groups[0])]
        assert crossing == [(0, 4), (1, 5)]

    def test_make_topology_dispatch(self):
        assert make_topology("ring", 5).name == "ring"
        with pytest.raises(KeyError):
            make_topology("moebius", 5)
        assert set(topology_names()) == {"complete", "ring", "star", "grid",
                                         "random_gnp", "clustered",
                                         "hierarchy"}


class TestSpecs:
    def test_parse_plain_and_with_options(self):
        assert parse_topology_spec("ring") == ("ring", {})
        kind, options = parse_topology_spec("random_gnp:p=0.4,connect=false")
        assert kind == "random_gnp"
        assert options == {"p": 0.4, "connect": False}
        kind, options = parse_topology_spec("clustered: clusters=3, bridges=2 ")
        assert options == {"clusters": 3, "bridges": 2}

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_topology_spec("")
        with pytest.raises(ValueError):
            parse_topology_spec("moebius")
        with pytest.raises(ValueError):
            parse_topology_spec("ring:oops")

    def test_build_topology_passthrough(self):
        assert build_topology(None, n=5) is None
        existing = ring(5)
        assert build_topology(existing, n=5) is existing
        built = build_topology("grid:cols=2", n=6, seed=1)
        assert built.name == "grid"

    def test_describe_topologies_covers_all(self):
        names = [name for name, _ in describe_topologies()]
        assert names == sorted(topology_names())


class TestRouting:
    def test_bfs_routes_are_shortest_and_deterministic(self):
        topology = ring(6)
        routes = bfs_routes(topology, 0)
        assert routes[0] == (0,)
        assert routes[1] == (0, 1)
        assert routes[2] == (0, 1, 2)
        # The antipodal node: ties broken toward the ascending neighbor.
        assert routes[3] == (0, 1, 2, 3)

    def test_router_respects_partition_epochs(self):
        from repro.faults import partition_and_heal
        schedule = partition_and_heal([[0, 1, 2], [3, 4, 5]], 10.0, 20.0)
        router = Router(complete(6), schedule)
        assert router.route(0, 4, 5.0) == (0, 4)
        assert router.route(0, 4, 15.0) is None       # split
        assert router.route(0, 1, 15.0) == (0, 1)     # same side unaffected
        assert router.route(0, 4, 25.0) == (0, 4)     # healed

    def test_router_honors_faults_added_after_construction(self):
        from repro.faults import LinkCrash
        from repro.topology import LinkSchedule
        schedule = LinkSchedule()
        router = Router(ring(4), schedule)
        assert router.route(0, 1, 6.0) == (0, 1)  # cache warm, all links up
        schedule.add(LinkCrash([(0, 1)], at=5.0))
        # The revision bump invalidates the cached table: traffic re-routes
        # the long way around instead of being dropped on the dead link.
        assert router.route(0, 1, 6.0) == (0, 3, 2, 1)
        assert router.route(0, 1, 4.0) == (0, 1)  # before the crash

    def test_delay_envelope_scales_with_diameter(self):
        delta, epsilon = 0.01, 0.002
        assert delay_envelope(complete(7), delta, epsilon) == \
            pytest.approx((delta - epsilon, delta + epsilon))
        lo, hi = delay_envelope(ring(7), delta, epsilon)
        assert lo == pytest.approx(delta - epsilon)
        assert hi == pytest.approx(3 * (delta + epsilon))  # diameter 3

    def test_delay_envelope_includes_extra_link_delay(self):
        topology = Topology(3, [(0, 1), (1, 2)], extra_delay={(1, 2): 0.005})
        lo, hi = delay_envelope(topology, 0.01, 0.002)
        assert lo == pytest.approx(0.008)             # the plain 0-1 hop
        assert hi == pytest.approx(2 * 0.012 + 0.005)  # 0->1->2 worst case
