"""Unit tests for the adversarial delay models and their registration."""

import random

import pytest

from repro.adversary.delays import (
    ADVERSARIAL_DELAY_KINDS,
    PerPairBiasedDelayModel,
    RoundAwareDelayModel,
    SkewMaximizingDelayModel,
    build_adversarial_delay_model,
)
from repro.analysis.experiments import default_parameters, make_delay_model
from repro.analysis.workloads import build_parameters, get_workload
from repro.runner import RunSpec

RNG = random.Random(0)


class TestPerPairBiased:
    def test_diagonal_pattern(self):
        model = PerPairBiasedDelayModel(0.01, 0.002)
        assert model.delay(0, 3, 1.0, RNG) == pytest.approx(0.012)
        assert model.delay(3, 0, 1.0, RNG) == pytest.approx(0.008)
        assert model.delay(2, 2, 1.0, RNG) == 0.01

    def test_fraction_scales_the_bias(self):
        half = PerPairBiasedDelayModel(0.01, 0.002, fraction=0.5)
        assert half.delay(0, 1, 0.0, RNG) == pytest.approx(0.011)
        with pytest.raises(ValueError, match="fraction"):
            PerPairBiasedDelayModel(0.01, 0.002, fraction=1.5)


class TestSkewMaximizing:
    def test_only_crossing_messages_are_biased(self):
        model = SkewMaximizingDelayModel(0.01, 0.002, pivot=2)
        assert model.delay(0, 3, 0.0, RNG) == pytest.approx(0.012)  # low→high
        assert model.delay(3, 0, 0.0, RNG) == pytest.approx(0.008)  # high→low
        assert model.delay(0, 1, 0.0, RNG) == 0.01                  # in-block
        assert model.delay(2, 3, 0.0, RNG) == 0.01                  # in-block

    def test_pivot_must_leave_both_blocks_nonempty(self):
        with pytest.raises(ValueError, match="pivot"):
            SkewMaximizingDelayModel(0.01, 0.002, pivot=0)


class TestRoundAware:
    def test_bias_flips_between_rounds(self):
        model = RoundAwareDelayModel(0.01, 0.002, round_length=1.0,
                                     initial_round_time=0.0, period=1)
        # Round 0: diagonal late; round 1: flipped.
        assert model.delay(0, 1, 0.5, RNG) == pytest.approx(0.012)
        assert model.delay(0, 1, 1.5, RNG) == pytest.approx(0.008)
        assert model.delay(0, 1, 2.5, RNG) == pytest.approx(0.012)
        assert model.delay(1, 0, 0.5, RNG) == pytest.approx(0.008)
        assert model.delay(0, 0, 0.5, RNG) == 0.01

    def test_period_stretches_the_flip(self):
        model = RoundAwareDelayModel(0.01, 0.002, round_length=1.0, period=2)
        assert model.delay(0, 1, 0.5, RNG) == model.delay(0, 1, 1.5, RNG)
        assert model.delay(0, 1, 0.5, RNG) != model.delay(0, 1, 2.5, RNG)

    def test_validation(self):
        with pytest.raises(ValueError, match="round_length"):
            RoundAwareDelayModel(0.01, 0.002, round_length=0.0)
        with pytest.raises(ValueError, match="period"):
            RoundAwareDelayModel(0.01, 0.002, round_length=1.0, period=0)


class TestRegistration:
    def test_make_delay_model_builds_every_adversarial_kind(self):
        params = default_parameters(n=7, f=2)
        expected = {"per_pair": PerPairBiasedDelayModel,
                    "skew_max": SkewMaximizingDelayModel,
                    "round_aware": RoundAwareDelayModel}
        assert set(expected) == set(ADVERSARIAL_DELAY_KINDS)
        for kind, cls in expected.items():
            model = make_delay_model(kind, params)
            assert isinstance(model, cls)
            assert model.delta == params.delta
            assert model.epsilon == params.epsilon

    def test_skew_max_pivot_defaults_to_half_the_system(self):
        params = default_parameters(n=7, f=2)
        model = make_delay_model("skew_max", params)
        assert model.pivot == 3

    def test_round_aware_inherits_the_round_grid(self):
        params = default_parameters(n=7, f=2)
        model = make_delay_model("round_aware", params)
        assert model.round_length == params.round_length
        assert model.initial_round_time == params.initial_round_time

    def test_unknown_kind_still_rejected(self):
        params = default_parameters(n=4, f=1)
        with pytest.raises(ValueError, match="unknown"):
            build_adversarial_delay_model("quantum", params)

    def test_runspec_validates_delay_names_eagerly(self):
        params = default_parameters(n=4, f=1)
        with pytest.raises(ValueError, match="unknown delay model"):
            RunSpec.maintenance(params, delay="quantum")
        for kind in ADVERSARIAL_DELAY_KINDS:
            spec = RunSpec.maintenance(params, delay=kind, fault_kind=None)
            assert spec.delay == kind


class TestAdversarialWorkloads:
    @pytest.mark.parametrize("name, expected", [
        ("adversarial-lan", SkewMaximizingDelayModel),
        ("tightness-sweep", PerPairBiasedDelayModel),
    ])
    def test_presets_build_the_adversaries(self, name, expected):
        workload = get_workload(name)
        params = build_parameters(workload)
        assert isinstance(workload.build_delay_model(params), expected)
        assert workload.fault_kind is None
