"""Unit tests for repro.core.amortized (spread-out adjustment application)."""

import pytest

from repro.analysis import (
    measured_agreement,
    run_maintenance_scenario,
    sample_grid,
)
from repro.core import AmortizedWelchLynchProcess, agreement_bound


def run_amortized(params, rounds=8, steps=8, spread_fraction=0.5, seed=0,
                  fault_kind="two_faced"):
    factory = lambda p, r: AmortizedWelchLynchProcess(  # noqa: E731
        p, steps=steps, spread_fraction=spread_fraction, max_rounds=r)
    return run_maintenance_scenario(params, rounds=rounds, fault_kind=fault_kind,
                                    seed=seed, correct_process_factory=factory)


class TestConstruction:
    def test_rejects_bad_steps_and_fraction(self, medium_params):
        with pytest.raises(ValueError):
            AmortizedWelchLynchProcess(medium_params, steps=0)
        with pytest.raises(ValueError):
            AmortizedWelchLynchProcess(medium_params, spread_fraction=0.0)
        with pytest.raises(ValueError):
            AmortizedWelchLynchProcess(medium_params, spread_fraction=1.5)

    def test_spread_interval_and_monotonicity_predicate(self, medium_params):
        process = AmortizedWelchLynchProcess(medium_params, steps=4,
                                             spread_fraction=0.5)
        assert process.spread_interval() == pytest.approx(
            medium_params.round_length * 0.5)
        # Adjustments smaller than the spread interval keep time monotone.
        assert process.is_monotone_for(medium_params.beta)
        assert not process.is_monotone_for(process.spread_interval() * 2)

    def test_label_mentions_steps(self, medium_params):
        process = AmortizedWelchLynchProcess(medium_params, steps=3)
        assert "steps=3" in process.label()


class TestBehaviour:
    def test_amortized_run_still_meets_agreement_bound(self, medium_params):
        result = run_amortized(medium_params, rounds=8, seed=1)
        start = result.tmax0 + 2 * medium_params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=150)
        # The amortized variant holds the same logical clock as the
        # instantaneous one at every round boundary, so Theorem 16 still holds
        # (the within-round transient is below |ADJ| <= the Theorem 4a bound).
        assert skew <= agreement_bound(medium_params) + 1e-9

    def test_adjustments_are_applied_in_slices(self, medium_params):
        steps = 5
        rounds = 4
        result = run_amortized(medium_params, rounds=rounds, steps=steps, seed=2)
        nonfaulty = result.trace.nonfaulty_ids
        for pid in nonfaulty:
            adjustments = result.trace.adjustments(pid)
            # Every completed round contributes `steps` slices.
            assert len(adjustments) >= steps * (rounds - 1)

    def test_total_correction_matches_computed_adjustments(self, medium_params):
        result = run_amortized(medium_params, rounds=5, steps=4, seed=3)
        trace = result.trace
        for pid in trace.nonfaulty_ids:
            updates = trace.events_named("update", pid)
            total_computed = sum(event.data["adjustment"] for event in updates)
            total_applied = sum(trace.adjustments(pid))
            assert total_applied == pytest.approx(total_computed, abs=1e-12)

    def test_local_time_is_monotone_for_nonfaulty_processes(self, medium_params):
        result = run_amortized(medium_params, rounds=8, steps=10, seed=4)
        trace = result.trace
        grid = sample_grid(result.tmax0, result.end_time, 400)
        for pid in trace.nonfaulty_ids:
            values = [trace.local_time(pid, t) for t in grid]
            diffs = [b - a for a, b in zip(values, values[1:])]
            # Sliced corrections keep local time non-decreasing even when the
            # per-round adjustment is negative.
            assert min(diffs) >= -1e-9

    def test_single_step_matches_base_algorithm(self, medium_params):
        """steps=1 degenerates to the instantaneous algorithm (same trace)."""
        amortized = run_amortized(medium_params, rounds=5, steps=1, seed=5)
        plain = run_maintenance_scenario(medium_params, rounds=5,
                                         fault_kind="two_faced", seed=5)
        grid = sample_grid(amortized.tmax0 + medium_params.round_length,
                           amortized.end_time, 50)
        for pid in amortized.trace.nonfaulty_ids:
            for t in grid:
                assert amortized.trace.local_time(pid, t) == pytest.approx(
                    plain.trace.local_time(pid, t), abs=1e-9)
