"""Unit tests for the Section 9.2 start-up algorithm."""

import pytest

from repro.analysis import run_startup_scenario, startup_spread_series
from repro.core import StartupProcess, startup_limit, startup_round_recurrence


class TestIntervalLengths:
    def test_first_interval_formula(self, small_params):
        process = StartupProcess(small_params)
        p = small_params
        assert process.first_interval_length() == pytest.approx(
            (1 + p.rho) * (2 * p.delta + 4 * p.epsilon))

    def test_second_interval_much_shorter_than_first(self, small_params):
        process = StartupProcess(small_params)
        assert process.second_interval_length() < process.first_interval_length()

    def test_initial_state(self, small_params):
        process = StartupProcess(small_params)
        assert process.asleep is True
        assert process.round_index == 0
        assert process.diff == {}
        assert process.finished is False


class TestConvergence:
    def test_spread_shrinks_every_round(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=6, initial_spread=0.5,
                                      seed=3)
        series = startup_spread_series(result.trace)
        assert len(series) >= 4
        # After the first exchange the spread should shrink monotonically
        # (up to the additive floor of the recurrence).
        floor = startup_limit(medium_params)
        for before, after in zip(series, series[1:]):
            assert after <= max(before, floor) + 1e-9

    def test_rounds_obey_lemma20_recurrence(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=6, initial_spread=0.5,
                                      seed=5)
        series = startup_spread_series(result.trace)
        for before, after in zip(series, series[1:]):
            assert after <= startup_round_recurrence(medium_params, before) + 1e-9

    def test_final_spread_approaches_limit(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=8, initial_spread=1.0,
                                      seed=0)
        series = startup_spread_series(result.trace)
        assert series[-1] <= startup_limit(medium_params)

    def test_fault_free_also_converges(self, small_params):
        result = run_startup_scenario(small_params, rounds=6, initial_spread=0.3,
                                      fault_count=0, seed=2)
        series = startup_spread_series(result.trace)
        assert series[-1] < series[0] / 4


class TestRoundMachinery:
    def test_processes_complete_requested_rounds(self, medium_params):
        rounds = 5
        result = run_startup_scenario(medium_params, rounds=rounds,
                                      initial_spread=0.5, seed=1)
        for pid in result.trace.nonfaulty_ids:
            begun = result.trace.events_named("startup_round_begin", process_id=pid)
            assert len(begun) >= rounds - 1

    def test_ready_messages_are_sent(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=3, initial_spread=0.5,
                                      seed=1)
        assert result.trace.events_named("startup_ready_sent")

    def test_adjustments_recorded_per_round(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=4, initial_spread=0.5,
                                      seed=1)
        for pid in result.trace.nonfaulty_ids:
            assert len(result.trace.adjustments(pid)) >= 2
