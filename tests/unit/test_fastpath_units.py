"""Unit tests for the fast-path surfaces: raw event-queue API, Counter-backed
message stats, trace index invalidation, the bench harness, and its CLI."""

import json

import pytest

from repro import bench
from repro.cli import build_parser
from repro.clocks import ConstantRateClock, CorrectionHistory, PerfectClock
from repro.sim import (
    EventQueue,
    ExecutionTrace,
    Message,
    MessageKind,
    MessageStats,
)
from repro.sim.traceindex import TraceIndex


class TestEventQueueRawAPI:
    def test_push_fields_pop_fields_round_trip(self):
        queue = EventQueue()
        queue.push_fields(MessageKind.ORDINARY, 1, 2, "hi", 0.5, 1.5)
        entry = queue.pop_fields()
        assert entry[0] == 1.5          # delivery time
        assert entry[1] == 0            # timer_last
        assert entry[3] is MessageKind.ORDINARY
        assert entry[4:] == (1, 2, "hi", 0.5)
        assert queue.delivered_count == 1

    def test_raw_and_object_apis_interoperate(self):
        queue = EventQueue()
        queue.push_fields(MessageKind.TIMER, 0, 0, "t", 0.0, 2.0)
        queue.push(Message(kind=MessageKind.ORDINARY, sender=1, recipient=0,
                           payload="m", send_time=0.0, delivery_time=2.0))
        # Property 4: the ordinary message wins the tie despite later insert.
        first = queue.pop()
        assert first.payload == "m" and first.kind is MessageKind.ORDINARY
        assert queue.pop_fields()[6] == "t"

    def test_pending_reconstructs_messages(self):
        queue = EventQueue()
        queue.push_fields(MessageKind.START, 3, 3, None, 1.0, 1.0)
        (pending,) = queue.pending()
        assert isinstance(pending, Message)
        assert pending.is_start() and pending.sender == 3
        assert pending.delay == 0.0

    def test_message_is_slotted_and_frozen(self):
        msg = Message(kind=MessageKind.ORDINARY, sender=0, recipient=1,
                      payload=None, send_time=0.0, delivery_time=1.0)
        assert not hasattr(msg, "__dict__")
        with pytest.raises(AttributeError):
            msg.delivery_time = 2.0


class TestMessageStats:
    def test_record_send_counts(self):
        stats = MessageStats()
        for sender in (0, 1, 0, 2, 0):
            stats.record_send(sender)
        assert stats.sent == 5
        assert dict(stats.per_process_sent) == {0: 3, 1: 1, 2: 1}

    def test_plain_dict_construction_still_counts(self):
        stats = MessageStats(per_process_sent={4: 2})
        stats.record_send(4)
        stats.record_send(9)
        assert stats.per_process_sent[4] == 3
        assert stats.per_process_sent[9] == 1


class TestTraceIndex:
    def _trace(self):
        clocks = {0: PerfectClock(), 1: ConstantRateClock(offset=0.1, rate=1.0)}
        histories = {0: CorrectionHistory(0.0), 1: CorrectionHistory(0.0)}
        return ExecutionTrace(clocks=clocks, histories=histories, faulty_ids=(),
                              events=[], stats=MessageStats(), end_time=10.0)

    def test_stale_after_history_growth(self):
        trace = self._trace()
        index = trace.index()
        assert not index.stale()
        trace.correction_history(0).apply(5.0, 0.25, 0)
        assert index.stale()
        # trace.index() hands back a rebuilt, correct index.
        assert trace.index().local_time(0, 6.0) == 6.25

    def test_single_point_matches_row_evaluation(self):
        trace = self._trace()
        trace.correction_history(1).apply(2.0, -0.1, 0)
        index = trace.index()
        grid = [0.0, 1.0, 2.0, 3.0]
        rows = index.local_times_rows([0, 1], grid)
        for row, pid in zip(rows, [0, 1]):
            assert row == [index.local_time(pid, t) for t in grid]

    def test_correction_index_properties(self):
        history = CorrectionHistory(0.5)
        history.apply(1.0, 0.25, 0)
        assert list(history.times) == [float("-inf"), 1.0]
        assert list(history.corrections) == [0.5, 0.75]
        assert history.current() == 0.75
        assert history.correction_at(0.0) == 0.5
        assert history.correction_at(1.0) == 0.75


class TestBenchHarness:
    def test_small_benchmarks_produce_sane_numbers(self):
        et = bench.bench_event_throughput(n=7, rounds=2, repeats=1)
        assert et["events"] > 0 and et["events_per_second"] > 0
        tr = bench.bench_trace_reconstruction(k=8, calls=1000, repeats=1)
        assert tr["calls_per_second"] > 0
        metrics = bench.bench_metrics(n=4, rounds=2, samples=20, repeats=1)
        assert metrics["seconds"] > 0 and metrics["reference_seconds"] > 0

    def test_merge_and_speedups(self, tmp_path):
        path = tmp_path / "BENCH.json"
        results = {"metrics_n200": {"seconds": 0.1},
                   "event_throughput": {"seconds": 0.02,
                                        "events_per_second": 100.0}}
        payload = bench.merge_results(str(path), results, "seed",
                                      record_baseline=True)
        path.write_text(json.dumps(payload))
        faster = {"metrics_n200": {"seconds": 0.005},
                  "event_throughput": {"seconds": 0.01,
                                       "events_per_second": 200.0}}
        payload = bench.merge_results(str(path), faster, "fast",
                                      record_baseline=False)
        assert payload["baseline"]["label"] == "seed"
        assert payload["speedups"]["metrics_n200"] == pytest.approx(20.0)
        assert payload["speedups"]["event_throughput"] == pytest.approx(2.0)

    def test_regression_guard(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({
            "baseline": {"results": {"event_throughput":
                                     {"events_per_second": 1000.0}}}}))
        healthy = {"event_throughput": {"events_per_second": 800.0}}
        assert bench.check_event_throughput(healthy, str(path)) is None
        regressed = {"event_throughput": {"events_per_second": 600.0}}
        failure = bench.check_event_throughput(regressed, str(path))
        assert failure is not None and "dropped" in failure

    def test_regression_guard_without_baseline(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema": 1}))
        failure = bench.check_event_throughput(
            {"event_throughput": {"events_per_second": 1.0}}, str(path))
        assert failure is not None and "record-baseline" in failure

    def test_format_results_renders_every_section(self):
        results = {
            "event_throughput": {"events": 10, "seconds": 0.1,
                                 "events_per_second": 100.0},
            "trace_reconstruction": {"k": 8, "calls": 100, "seconds": 0.01,
                                     "calls_per_second": 1e4},
            "metrics_n10": {"seconds": 0.01, "reference_seconds": 0.1,
                            "in_process_speedup": 10.0},
            "end_to_end": {"seconds": 0.2, "workloads": ["lan"]},
        }
        text = bench.format_results(results, {"metrics_n10": 10.0})
        for fragment in ("event throughput", "trace reconstruction",
                         "metrics_n10", "end_to_end", "speedup vs baseline"):
            assert fragment in text


class TestBenchCLI:
    def test_parser_accepts_bench_options(self):
        args = build_parser().parse_args(
            ["bench", "--quick", "--no-write", "--check", "BENCH_3.json",
             "--tolerance", "0.5", "--label", "x"])
        assert args.command == "bench"
        assert args.quick and args.no_write
        assert args.tolerance == 0.5
