"""Unit tests for repro.analysis.rounds (per-round analysis of a run)."""

import pytest

from repro.analysis import run_maintenance_scenario
from repro.analysis.rounds import (
    adjustment_table,
    build_round_reports,
    convergence_factors,
    detect_missed_rounds,
    format_round_table,
)
from repro.core import adjustment_bound, steady_state_beta


@pytest.fixture(scope="module")
def scenario(module_params):
    return run_maintenance_scenario(module_params, rounds=8, fault_kind="two_faced",
                                    seed=0)


@pytest.fixture(scope="module")
def module_params():
    from repro.core import SyncParameters
    return SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


class TestBuildRoundReports:
    def test_one_report_per_completed_round(self, scenario):
        reports = build_round_reports(scenario.trace)
        indices = [report.round_index for report in reports]
        assert indices == sorted(indices)
        assert indices[0] == 0
        assert len(indices) >= scenario.rounds

    def test_every_nonfaulty_process_participates(self, scenario, module_params):
        reports = build_round_reports(scenario.trace)
        nonfaulty = module_params.n - module_params.f
        # All but (possibly) the trailing partially-executed round are complete.
        for report in reports[:scenario.rounds - 1]:
            assert report.participants == nonfaulty

    def test_faulty_processes_excluded_by_default(self, scenario, module_params):
        reports = build_round_reports(scenario.trace)
        faulty = set(range(module_params.n - module_params.f, module_params.n))
        for report in reports:
            assert not (set(report.per_process) & faulty)

    def test_include_faulty_flag(self, scenario, module_params):
        reports = build_round_reports(scenario.trace, include_faulty=True)
        all_pids = set()
        for report in reports:
            all_pids |= set(report.per_process)
        # The two-faced attackers log nothing, but the flag must not crash and
        # must still include every nonfaulty process.
        assert set(scenario.trace.nonfaulty_ids) <= all_pids

    def test_round_fields_are_ordered_in_time(self, scenario):
        reports = build_round_reports(scenario.trace)
        for report in reports[:scenario.rounds - 1]:
            for entry in report.per_process.values():
                assert entry.complete
                assert entry.broadcast_real_time <= entry.update_real_time


class TestDerivedQuantities:
    def test_spread_matches_round_start_spreads_metric(self, scenario):
        from repro.analysis import round_start_spreads
        reports = build_round_reports(scenario.trace)
        spreads = round_start_spreads(scenario.trace)
        for report in reports:
            if report.round_index in spreads and report.spread is not None:
                assert report.spread == pytest.approx(spreads[report.round_index])

    def test_adjustments_respect_theorem_4a(self, scenario, module_params):
        table = adjustment_table(build_round_reports(scenario.trace))
        bound = adjustment_bound(module_params)
        assert table, "expected at least one round of adjustments"
        for per_process in table.values():
            for adjustment in per_process.values():
                assert abs(adjustment) <= bound

    def test_convergence_factors_reach_steady_state(self, scenario, module_params):
        reports = build_round_reports(scenario.trace)
        factors = convergence_factors(reports)
        assert factors, "expected at least two rounds with a defined spread"
        # Once at the steady-state floor the spread stops growing beyond it.
        floor = steady_state_beta(module_params)
        final_spreads = [r.spread for r in reports if r.spread is not None][-3:]
        assert all(spread <= floor + 1e-9 for spread in final_spreads)

    def test_no_missed_rounds_with_feasible_parameters(self, scenario):
        assert detect_missed_rounds(scenario.trace) == {}

    def test_missed_rounds_detected_when_p_is_too_small(self, module_params):
        """An infeasibly small P makes processes fall out of the round structure."""
        from dataclasses import replace
        bad = replace(module_params,
                      round_length=module_params.p_lower_bound() * 0.45)
        result = run_maintenance_scenario(bad, rounds=6, fault_kind=None, seed=1)
        missed = detect_missed_rounds(result.trace)
        assert missed, "expected missed_round events with an infeasible P"

    def test_format_round_table_mentions_every_round(self, scenario):
        reports = build_round_reports(scenario.trace)
        text = format_round_table(reports)
        assert "round" in text and "max |ADJ|" in text
        assert len(text.splitlines()) == len(reports) + 2  # header + rule
