"""Unit tests for repro.analysis.export (JSON/CSV serialization)."""

import csv
import io
import json

import pytest

from repro.analysis import (
    comparison_rows_to_dicts,
    parameters_to_dict,
    rows_to_csv,
    run_comparison,
    run_maintenance_scenario,
    scenario_to_dict,
    skew_series_rows,
    sweep_epsilon,
    sweep_to_dicts,
    to_json,
    trace_to_dict,
    write_csv,
    write_json,
)


@pytest.fixture(scope="module")
def scenario(medium_params_module):
    return run_maintenance_scenario(medium_params_module, rounds=5,
                                    fault_kind="two_faced", seed=0)


@pytest.fixture(scope="module")
def medium_params_module():
    from repro.core import SyncParameters
    return SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


class TestParametersToDict:
    def test_contains_all_constants_and_derived_bounds(self, medium_params_module):
        payload = parameters_to_dict(medium_params_module)
        for key in ("n", "f", "rho", "delta", "epsilon", "beta", "round_length",
                    "collection_window", "p_lower_bound", "p_upper_bound"):
            assert key in payload
        assert payload["n"] == 7
        assert payload["p_lower_bound"] <= payload["round_length"] <= payload["p_upper_bound"]


class TestTraceToDict:
    def test_structure(self, scenario):
        payload = trace_to_dict(scenario.trace)
        assert payload["n"] == 7
        assert sorted(payload["faulty_ids"]) == [5, 6]
        assert payload["stats"]["sent"] > 0
        assert payload["events"], "expected logged events"
        assert set(payload["corrections"]) == {str(pid) for pid in range(7)}

    def test_local_time_sampling(self, scenario):
        payload = trace_to_dict(scenario.trace, samples=10)
        grid = payload["local_times"]["real_times"]
        assert len(grid) == 10
        per_process = payload["local_times"]["per_process"]
        assert len(per_process["0"]) == 10

    def test_json_round_trip(self, scenario):
        payload = scenario_to_dict(scenario, samples=5)
        text = to_json(payload)
        recovered = json.loads(text)
        assert recovered["rounds"] == scenario.rounds
        assert recovered["params"]["n"] == 7


class TestRowExports:
    def test_skew_series_rows(self, scenario):
        rows = skew_series_rows(scenario.trace, scenario.tmax0, scenario.end_time,
                                samples=20)
        assert len(rows) == 20
        assert all(set(row) == {"real_time", "skew"} for row in rows)
        assert all(row["skew"] >= 0 for row in rows)

    def test_comparison_rows(self, medium_params_module):
        rows = run_comparison(medium_params_module, rounds=4,
                              algorithms=["welch_lynch", "unsynchronized"],
                              fault_kind=None, seed=1)
        dicts = comparison_rows_to_dicts(rows)
        assert {d["algorithm"] for d in dicts} == {"welch_lynch", "unsynchronized"}
        assert all("agreement" in d for d in dicts)

    def test_sweep_to_dicts_merges_inputs_and_outputs(self):
        result = sweep_epsilon([0.002], rounds=4, seed=0)
        dicts = sweep_to_dicts(result)
        assert len(dicts) == 1
        assert set(dicts[0]) == {"epsilon", "gamma", "agreement"}


class TestCsv:
    def test_rows_to_csv_includes_header_and_all_rows(self):
        text = rows_to_csv([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert parsed == [{"a": "1", "b": "2"}, {"a": "3", "b": "4"}]

    def test_rows_to_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_union_of_fieldnames_is_used(self):
        text = rows_to_csv([{"a": 1}, {"b": 2}])
        header = text.splitlines()[0]
        assert header == "a,b"

    def test_write_csv_and_json_create_files(self, tmp_path, scenario):
        json_path = tmp_path / "scenario.json"
        csv_path = tmp_path / "skew.csv"
        write_json(scenario_to_dict(scenario), str(json_path))
        write_csv(skew_series_rows(scenario.trace, scenario.tmax0,
                                   scenario.end_time, samples=5), str(csv_path))
        assert json.loads(json_path.read_text())["rounds"] == scenario.rounds
        assert len(csv_path.read_text().splitlines()) == 6  # header + 5 rows
