"""Unit tests for link-level fault injection (repro.faults.links)."""

import math

import pytest

from repro.faults import (
    LinkCrash,
    LinkFlap,
    LinkPartition,
    crash_links,
    flap_link,
    partition_and_heal,
)
from repro.topology import LinkSchedule, complete


class TestLinkCrash:
    def test_permanent_crash(self):
        fault = LinkCrash([(0, 1)], at=5.0)
        assert not fault.is_down(0, 1, 4.999)
        assert fault.is_down(0, 1, 5.0)
        assert fault.is_down(1, 0, 1e9)  # symmetric, forever
        assert not fault.is_down(0, 2, 10.0)
        assert fault.transition_times() == (5.0,)

    def test_repaired_crash(self):
        fault = LinkCrash([(0, 1)], at=5.0, until=8.0)
        assert fault.is_down(0, 1, 7.999)
        assert not fault.is_down(0, 1, 8.0)
        assert fault.transition_times() == (5.0, 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkCrash([], at=1.0)
        with pytest.raises(ValueError):
            LinkCrash([(0, 1)], at=5.0, until=5.0)


class TestLinkFlap:
    def test_duty_cycle(self):
        fault = LinkFlap([(0, 1)], period=1.0, down_fraction=0.25,
                         start=10.0, end=12.0)
        assert fault.is_down(0, 1, 10.1)      # first 25% of the period: down
        assert not fault.is_down(0, 1, 10.5)  # rest: up
        assert fault.is_down(0, 1, 11.2)      # second period
        assert not fault.is_down(0, 1, 12.3)  # window over
        assert not fault.is_down(0, 1, 9.9)   # window not begun

    def test_transitions_enumerate_every_edge(self):
        fault = LinkFlap([(0, 1)], period=1.0, down_fraction=0.5,
                         start=0.0, end=2.0)
        assert fault.transition_times() == (0.0, 0.5, 1.0, 1.5, 2.0)

    def test_requires_finite_window(self):
        with pytest.raises(ValueError):
            LinkFlap([(0, 1)], period=1.0, end=math.inf)
        with pytest.raises(ValueError):
            LinkFlap([(0, 1)], period=0.0, end=1.0)
        with pytest.raises(ValueError):
            LinkFlap([(0, 1)], period=1.0, down_fraction=1.0, end=1.0)


class TestLinkPartition:
    def test_cross_group_links_down_during_window(self):
        fault = LinkPartition([[0, 1], [2, 3]], start=1.0, end=2.0)
        assert fault.is_down(0, 2, 1.5)
        assert fault.is_down(3, 1, 1.5)
        assert not fault.is_down(0, 1, 1.5)   # same group
        assert not fault.is_down(0, 2, 0.5)   # before
        assert not fault.is_down(0, 2, 2.0)   # healed
        assert fault.heal_time == 2.0

    def test_ungrouped_nodes_keep_their_links(self):
        fault = LinkPartition([[0, 1], [2, 3]], start=0.0, end=10.0)
        assert not fault.is_down(0, 4, 5.0)
        assert not fault.is_down(4, 2, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkPartition([[0, 1]], start=0.0)  # one group is no partition
        with pytest.raises(ValueError):
            LinkPartition([[0, 1], [1, 2]], start=0.0)  # overlapping groups
        with pytest.raises(ValueError):
            LinkPartition([[0], [1]], start=5.0, end=5.0)


class TestLinkSchedule:
    def test_stacked_faults_and_epochs(self):
        schedule = LinkSchedule([
            LinkCrash([(0, 1)], at=1.0, until=3.0),
            LinkCrash([(0, 1)], at=5.0),
        ])
        assert schedule.transition_times() == (1.0, 3.0, 5.0)
        assert [schedule.epoch(t) for t in (0.5, 1.5, 3.5, 6.0)] == [0, 1, 2, 3]
        assert schedule.link_up(0, 1, 0.5)
        assert not schedule.link_up(0, 1, 2.0)
        assert schedule.link_up(0, 1, 4.0)
        assert not schedule.link_up(0, 1, 9.0)

    def test_empty_schedule_is_falsy_and_all_up(self):
        schedule = LinkSchedule()
        assert not schedule
        assert schedule.link_up(0, 1, 123.0)
        assert partition_and_heal([[0], [1]], 0.0, 1.0)

    def test_helpers_build_single_fault_schedules(self):
        assert len(crash_links([(0, 1)], at=1.0).faults) == 1
        assert len(flap_link(0, 1, period=0.5, end=2.0).faults) == 1
        schedule = partition_and_heal([[0, 1], [2]], 1.0, 2.0)
        assert not schedule.link_up(0, 2, 1.5)

    def test_partition_detection_via_components(self):
        """A schedule frozen at an instant detects the partition structure."""
        topology = complete(6)
        schedule = partition_and_heal([[0, 1, 2], [3, 4, 5]], 10.0, 20.0)
        during = topology.components(
            link_up=lambda u, v: schedule.link_up(u, v, 15.0))
        after = topology.components(
            link_up=lambda u, v: schedule.link_up(u, v, 25.0))
        assert during == [[0, 1, 2], [3, 4, 5]]
        assert after == [[0, 1, 2, 3, 4, 5]]
