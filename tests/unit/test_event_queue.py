"""Unit tests for messages and the event queue (execution ordering rules)."""

import pytest

from repro.sim import EventQueue, Message, MessageKind


def make(kind, delivery, sender=0, recipient=1, payload=None, send=0.0):
    return Message(kind=kind, sender=sender, recipient=recipient, payload=payload,
                   send_time=send, delivery_time=delivery)


class TestMessage:
    def test_delay(self):
        msg = make(MessageKind.ORDINARY, delivery=1.5, send=1.0)
        assert msg.delay == pytest.approx(0.5)

    def test_kind_predicates(self):
        assert make(MessageKind.TIMER, 1.0).is_timer()
        assert make(MessageKind.START, 1.0).is_start()
        assert not make(MessageKind.ORDINARY, 1.0).is_timer()

    def test_frozen(self):
        msg = make(MessageKind.ORDINARY, 1.0)
        with pytest.raises(AttributeError):
            msg.delivery_time = 2.0


class TestEventQueue:
    def test_orders_by_delivery_time(self):
        queue = EventQueue()
        queue.push(make(MessageKind.ORDINARY, 3.0, payload="late"))
        queue.push(make(MessageKind.ORDINARY, 1.0, payload="early"))
        queue.push(make(MessageKind.ORDINARY, 2.0, payload="middle"))
        assert [queue.pop().payload for _ in range(3)] == ["early", "middle", "late"]

    def test_timers_ordered_after_ordinary_at_same_time(self):
        # Execution property 4: ordinary messages get in "just under the wire".
        queue = EventQueue()
        queue.push(make(MessageKind.TIMER, 5.0, payload="timer"))
        queue.push(make(MessageKind.ORDINARY, 5.0, payload="msg"))
        queue.push(make(MessageKind.START, 5.0, payload="start"))
        popped = [queue.pop().payload for _ in range(3)]
        assert popped.index("timer") == 2
        assert set(popped[:2]) == {"msg", "start"}

    def test_fifo_among_equal_priority(self):
        queue = EventQueue()
        for index in range(5):
            queue.push(make(MessageKind.ORDINARY, 1.0, payload=index))
        assert [queue.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(make(MessageKind.ORDINARY, 7.0))
        assert queue.peek_time() == 7.0

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue and len(queue) == 0
        queue.push(make(MessageKind.ORDINARY, 1.0))
        assert queue and len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_delivered_count(self):
        queue = EventQueue()
        queue.push(make(MessageKind.ORDINARY, 1.0))
        queue.push(make(MessageKind.ORDINARY, 2.0))
        queue.pop()
        assert queue.delivered_count == 1

    def test_pending_snapshot(self):
        queue = EventQueue()
        queue.push(make(MessageKind.ORDINARY, 1.0, payload="a"))
        queue.push(make(MessageKind.TIMER, 2.0, payload="b"))
        assert {m.payload for m in queue.pending()} == {"a", "b"}
        assert len(queue) == 2  # pending() does not consume
