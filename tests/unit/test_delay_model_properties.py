"""Property tests for every DelayModel subclass (assumption A3).

The invariant under test: *whatever* a delay model samples — any seed, any
(δ, ε) pair, any sender/recipient/send-time mix — the delay lies inside the
``[δ-ε, δ+ε]`` envelope (and is strictly positive), unless the model was
explicitly configured to break the assumption.  Dropping a message (``None``)
is always allowed in place of a delay.

These are randomized-but-deterministic property tests (fixed seed grids, many
samples) rather than example-based unit tests; the example-based suite lives
in test_delay_models.py.
"""

import itertools
import random

import pytest

from repro.sim import (
    AdversarialDelayModel,
    ContentionDelayModel,
    FixedDelayModel,
    PerLinkDelayModel,
    TruncatedGaussianDelayModel,
    UniformDelayModel,
)

#: (δ, ε) pairs spanning the regimes the workloads use (ε = 0 up to ε ≈ δ/2).
ENVELOPES = [(0.01, 0.0), (0.01, 0.002), (0.05, 0.02), (1.0, 0.499)]

SEEDS = [0, 1, 7, 123]

SAMPLES_PER_CASE = 400


def model_factories(delta, epsilon):
    """Every model family instantiated for one (δ, ε) pair."""
    factories = [
        ("fixed", lambda: FixedDelayModel(delta)),
        ("uniform", lambda: UniformDelayModel(delta, epsilon)),
        ("gaussian", lambda: TruncatedGaussianDelayModel(delta, epsilon)),
        ("gaussian-wide-sigma",
         lambda: TruncatedGaussianDelayModel(delta, epsilon, sigma=10 * delta)),
        ("per-link", lambda: PerLinkDelayModel(
            delta, epsilon,
            {(0, 1): delta - epsilon, (1, 0): delta + epsilon,
             (2, 3): delta})),
        ("adversarial", lambda: AdversarialDelayModel(
            delta, epsilon, fast_senders=[0, 2], slow_senders=[1, 3])),
        ("contention", lambda: ContentionDelayModel(
            delta, epsilon, window=delta, threshold=1, penalty=delta,
            drop_probability=0.2)),
    ]
    return factories


def sample_stream(model, rng, count):
    """Exercise a model across senders, recipients and clustered send times."""
    for index in range(count):
        sender = rng.randrange(8)
        recipient = rng.randrange(8)
        # Mix isolated and clustered send times to provoke contention paths.
        send_time = (index // 16) * 1.0 + rng.uniform(0.0, 1e-3)
        yield model.delay(sender, recipient, send_time, rng)


@pytest.mark.parametrize("delta,epsilon", ENVELOPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_all_models_respect_the_envelope(delta, epsilon, seed):
    """Property: every sampled delay is positive and inside [δ-ε, δ+ε]."""
    for name, factory in model_factories(delta, epsilon):
        model = factory()
        lo, hi = model.envelope()
        # The model's own envelope nests inside the configured [δ-ε, δ+ε]
        # (FixedDelayModel tightens it to ε = 0).
        assert delta - epsilon - 1e-12 <= lo <= hi <= delta + epsilon + 1e-12
        rng = random.Random(seed)
        for sample in sample_stream(model, rng, SAMPLES_PER_CASE):
            if sample is None:
                continue  # a drop is always a legal outcome
            assert sample > 0.0, f"{name} produced a non-positive delay"
            assert lo - 1e-12 <= sample <= hi + 1e-12, (
                f"{name} violated the envelope: {sample} not in [{lo}, {hi}]"
            )


@pytest.mark.parametrize("delta,epsilon", [(0.01, 0.002), (0.05, 0.02)])
def test_only_contention_is_allowed_to_drop(delta, epsilon):
    """Property: of the stock models, only the contention model drops."""
    for name, factory in model_factories(delta, epsilon):
        model = factory()
        rng = random.Random(99)
        drops = sum(1 for s in sample_stream(model, rng, SAMPLES_PER_CASE)
                    if s is None)
        if name == "contention":
            assert drops > 0, "clustered sends should provoke contention drops"
        else:
            assert drops == 0, f"{name} unexpectedly dropped {drops} messages"


def test_per_link_rejects_envelope_violations_by_construction():
    """PerLinkDelayModel is configured per link; bad configs must not build."""
    with pytest.raises(ValueError):
        PerLinkDelayModel(0.01, 0.002, {(0, 1): 0.0121})
    with pytest.raises(ValueError):
        PerLinkDelayModel(0.01, 0.002, {(0, 1): 0.0079})


def test_validation_rejects_a3_violations():
    """Constructors enforce δ > ε >= 0 and δ > 0 across all families."""
    for bad_delta, bad_epsilon in [(0.0, 0.0), (-1.0, 0.0), (0.01, 0.01),
                                   (0.01, -0.001), (0.01, 0.02)]:
        with pytest.raises(ValueError):
            UniformDelayModel(bad_delta, bad_epsilon)
        with pytest.raises(ValueError):
            TruncatedGaussianDelayModel(bad_delta, bad_epsilon)
        with pytest.raises(ValueError):
            AdversarialDelayModel(bad_delta, bad_epsilon)
        with pytest.raises(ValueError):
            ContentionDelayModel(bad_delta, bad_epsilon)


def test_determinism_per_seed():
    """Property: the sample stream is a pure function of the seed."""
    for delta, epsilon in ENVELOPES:
        for name, factory in model_factories(delta, epsilon):
            streams = []
            for _ in range(2):
                model = factory()
                rng = random.Random(5)
                streams.append(list(sample_stream(model, rng, 100)))
            assert streams[0] == streams[1], f"{name} is not seed-deterministic"
