"""Unit tests for the ε(1 − 1/n) lower bound and its certificates."""

import dataclasses
import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.adversary.certifier import (
    LowerBoundCertificate,
    certify_lower_bound,
    verify_certificate,
)
from repro.analysis.verification import check_certificate
from repro.core import SyncParameters
from repro.core.bounds import agreement_bound, lower_bound, tightness_gap


def params_for(n: int, epsilon: float = 0.002) -> SyncParameters:
    return SyncParameters.derive(n=n, f=0, rho=1e-4, delta=0.01,
                                 epsilon=epsilon)


class TestLowerBoundFormula:
    def test_matches_the_paper_formula(self):
        params = params_for(4)
        assert lower_bound(params) == pytest.approx(0.002 * (1 - 1 / 4))

    def test_single_process_is_trivially_synchronized(self):
        assert lower_bound(params_for(1)) == 0.0

    def test_strictly_monotone_in_n(self):
        values = [lower_bound(params_for(n)) for n in (2, 3, 5, 10, 50, 500)]
        assert values == sorted(values)
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_approaches_epsilon_as_n_grows(self):
        epsilon = 0.002
        bound = lower_bound(params_for(10 ** 6, epsilon))
        assert bound < epsilon
        assert epsilon - bound < 1e-8

    def test_scales_linearly_with_epsilon(self):
        assert lower_bound(params_for(5, 0.004)) \
            == pytest.approx(2 * lower_bound(params_for(5, 0.002)))

    @settings(max_examples=60, deadline=None)
    @given(n=st.integers(min_value=2, max_value=60),
           rho=st.floats(min_value=0.0, max_value=2e-3),
           delta=st.floats(min_value=1e-3, max_value=0.1),
           ratio=st.floats(min_value=0.01, max_value=0.9))
    def test_always_below_the_agreement_bound(self, n, rho, delta, ratio):
        """The provable window is never empty: ε(1 − 1/n) < γ."""
        try:
            params = SyncParameters.derive(n=n, f=0, rho=rho, delta=delta,
                                           epsilon=delta * ratio)
        except Exception:
            assume(False)
        assert lower_bound(params) < agreement_bound(params)


class TestTightnessGap:
    def test_brackets_and_ratios(self):
        params = params_for(5)
        gap = tightness_gap(params, achieved=0.002)
        assert gap.lower == lower_bound(params)
        assert gap.gamma == agreement_bound(params)
        assert gap.achieved_over_lower == pytest.approx(0.002 / gap.lower)
        assert gap.achieved_over_gamma == pytest.approx(0.002 / gap.gamma)
        assert gap.gamma_over_lower > 1.0
        assert 0.0 < gap.position < 1.0

    def test_position_endpoints(self):
        params = params_for(5)
        assert tightness_gap(params, lower_bound(params)).position \
            == pytest.approx(0.0)
        assert tightness_gap(params, agreement_bound(params)).position \
            == pytest.approx(1.0)

    def test_degenerate_lower_bound_yields_infinite_ratios(self):
        params = SyncParameters.derive(n=4, f=0, rho=1e-4, delta=0.01,
                                       epsilon=0.0)
        gap = tightness_gap(params, achieved=0.001)
        assert gap.lower == 0.0
        assert math.isinf(gap.gamma_over_lower)
        assert math.isinf(gap.achieved_over_lower)


@pytest.fixture(scope="module")
def certificate() -> LowerBoundCertificate:
    return certify_lower_bound(n=3, rounds=4, seed=2)


class TestCertificate:
    def test_certifies_the_bound(self, certificate):
        assert certificate.verified
        assert certificate.meets_lower_bound
        assert certificate.margin >= 1.0
        assert len(certificate.executions) == certificate.n
        assert sorted(certificate.chain) == list(range(certificate.n))
        # Execution 0 is the unshifted base run.
        assert certificate.executions[0].spread == 0.0
        assert certificate.executions[0].skew == certificate.base_skew
        # Spreads grow along the chain, never past ε.
        spreads = [item.spread for item in certificate.executions]
        assert spreads == sorted(spreads)
        assert spreads[-1] <= certificate.epsilon + 1e-12

    def test_offline_verification_finds_no_problems(self, certificate):
        assert verify_certificate(certificate) == []

    def test_json_round_trip_is_lossless(self, certificate):
        clone = LowerBoundCertificate.from_json(certificate.to_json())
        assert clone == certificate
        assert verify_certificate(clone) == []

    def test_dict_round_trip_is_lossless(self, certificate):
        payload = certificate.to_dict()
        assert payload["schema"] == 1
        assert LowerBoundCertificate.from_dict(payload) == certificate

    def test_unknown_schema_rejected(self, certificate):
        payload = certificate.to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            LowerBoundCertificate.from_dict(payload)

    def test_tampered_bound_is_detected(self, certificate):
        forged = dataclasses.replace(certificate,
                                     bound=certificate.bound / 2)
        assert any("1/n" in problem or "bound" in problem
                   for problem in verify_certificate(forged))

    def test_tampered_achieved_skew_is_detected(self, certificate):
        forged = dataclasses.replace(certificate,
                                     achieved_skew=certificate.achieved_skew
                                     * 3)
        assert any("family maximum" in problem
                   for problem in verify_certificate(forged))

    def test_inadmissible_evidence_is_detected(self, certificate):
        bad = dataclasses.replace(certificate.executions[-1],
                                  max_delay=certificate.delta
                                  + 2 * certificate.epsilon)
        forged = dataclasses.replace(
            certificate, executions=certificate.executions[:-1] + (bad,))
        assert any("envelope" in problem
                   for problem in verify_certificate(forged))

    def test_dishonest_verified_flag_is_detected(self, certificate):
        bad = dataclasses.replace(certificate.executions[-1],
                                  admissible=False)
        forged = dataclasses.replace(
            certificate, executions=certificate.executions[:-1] + (bad,))
        assert any("verified flag" in problem or "inadmissible" in problem
                   for problem in verify_certificate(forged))

    def test_check_certificate_report(self, certificate):
        report = check_certificate(certificate)
        assert report.all_passed
        achieved = report.check("lower_bound_achieved")
        assert achieved.measured == certificate.achieved_skew
        assert achieved.bound == certificate.bound
        sanity = report.check("lower_bound_vs_gamma")
        assert sanity.bound == certificate.gamma

    def test_check_certificate_flags_forgeries(self, certificate):
        forged = dataclasses.replace(certificate,
                                     achieved_skew=certificate.bound / 2)
        report = check_certificate(forged)
        assert not report.all_passed
        assert not report.check("lower_bound_achieved").passed
