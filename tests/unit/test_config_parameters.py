"""Unit tests for SyncParameters and the Section 5.2 constraints."""

import math

import pytest

from repro.core import ParameterError, SyncParameters


def feasible_params(**overrides):
    defaults = dict(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    defaults.update(overrides)
    return SyncParameters.derive(**defaults)


class TestAssumptionValidation:
    def test_n_at_least_3f_plus_1(self):
        with pytest.raises(ParameterError):
            SyncParameters(n=6, f=2, rho=1e-4, delta=0.01, epsilon=0.002,
                           beta=0.01, round_length=1.0)

    def test_boundary_n_equals_3f_plus_1_allowed(self):
        params = SyncParameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002,
                                beta=0.01, round_length=1.0)
        assert params.n == 7

    def test_epsilon_must_be_below_delta(self):
        with pytest.raises(ParameterError):
            SyncParameters(n=4, f=1, rho=1e-4, delta=0.01, epsilon=0.02,
                           beta=0.01, round_length=1.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ParameterError):
            SyncParameters(n=4, f=-1, rho=1e-4, delta=0.01, epsilon=0.002,
                           beta=0.01, round_length=1.0)
        with pytest.raises(ParameterError):
            SyncParameters(n=4, f=1, rho=-1e-4, delta=0.01, epsilon=0.002,
                           beta=0.01, round_length=1.0)
        with pytest.raises(ParameterError):
            SyncParameters(n=4, f=1, rho=1e-4, delta=0.01, epsilon=0.002,
                           beta=-0.01, round_length=1.0)
        with pytest.raises(ParameterError):
            SyncParameters(n=4, f=1, rho=1e-4, delta=0.01, epsilon=0.002,
                           beta=0.01, round_length=0.0)

    def test_f_zero_allowed(self):
        params = SyncParameters(n=1, f=0, rho=0.0, delta=0.01, epsilon=0.0,
                                beta=0.001, round_length=1.0)
        assert params.f == 0


class TestDerivedQuantities:
    def test_aliases(self):
        params = feasible_params()
        assert params.P == params.round_length
        assert params.T0 == params.initial_round_time

    def test_collection_window_formula(self):
        params = feasible_params()
        expected = (1 + params.rho) * (params.beta + params.delta + params.epsilon)
        assert params.collection_window() == pytest.approx(expected)

    def test_round_and_update_times(self):
        params = feasible_params()
        assert params.round_time(0) == params.T0
        assert params.round_time(3) == pytest.approx(params.T0 + 3 * params.P)
        assert params.update_time(2) == pytest.approx(
            params.round_time(2) + params.collection_window())


class TestConstraints:
    def test_derive_produces_feasible_parameters(self):
        params = feasible_params()
        assert params.is_feasible()
        assert params.constraint_violations() == ()

    def test_p_lower_bound_dominates_small_p(self):
        params = feasible_params()
        bad = params.with_round_length(params.p_lower_bound() * 0.5)
        assert not bad.is_feasible()
        assert any("below the lower bound" in v for v in bad.constraint_violations())

    def test_p_upper_bound_dominates_large_p(self):
        params = feasible_params()
        if math.isinf(params.p_upper_bound()):
            pytest.skip("no upper bound with rho=0")
        bad = params.with_round_length(params.p_upper_bound() * 2.0)
        assert not bad.is_feasible()

    def test_beta_lower_bound_positive_with_epsilon(self):
        params = feasible_params()
        assert params.beta_lower_bound() >= 4 * params.epsilon

    def test_beta_lower_bound_zero_when_no_uncertainty_or_drift(self):
        params = SyncParameters(n=4, f=1, rho=0.0, delta=0.01, epsilon=0.0,
                                beta=0.001, round_length=1.0)
        assert params.beta_lower_bound() == 0.0

    def test_beta_below_bound_detected(self):
        params = feasible_params()
        bad = params.with_beta(params.beta_lower_bound() * 0.5)
        assert any("beta" in v for v in bad.constraint_violations())

    def test_require_feasible_raises(self):
        params = feasible_params()
        with pytest.raises(ParameterError):
            params.with_round_length(1e9).require_feasible()

    def test_p_upper_bound_infinite_without_drift(self):
        params = SyncParameters(n=4, f=1, rho=0.0, delta=0.01, epsilon=0.002,
                                beta=0.01, round_length=1.0)
        assert math.isinf(params.p_upper_bound())

    def test_steady_state_beta_formula(self):
        params = feasible_params()
        assert params.steady_state_beta() == pytest.approx(
            4 * params.epsilon + 4 * params.rho * params.round_length)


class TestDeriveFactory:
    def test_round_length_override(self):
        params = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01,
                                       epsilon=0.002, round_length=0.5)
        assert params.round_length == 0.5
        assert params.is_feasible()

    def test_zero_epsilon_and_rho_still_feasible(self):
        params = SyncParameters.derive(n=4, f=1, rho=0.0, delta=0.01, epsilon=0.0)
        assert params.is_feasible()
        assert params.beta > 0

    def test_with_beta_and_with_round_length_copy(self):
        params = feasible_params()
        other = params.with_beta(params.beta * 2).with_round_length(params.P * 1.1)
        assert other.beta == pytest.approx(params.beta * 2)
        assert other.round_length == pytest.approx(params.P * 1.1)
        assert params.beta != other.beta  # original untouched (frozen dataclass)

    def test_larger_n_does_not_change_beta(self):
        small = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
        large = SyncParameters.derive(n=16, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
        assert small.beta == pytest.approx(large.beta)
