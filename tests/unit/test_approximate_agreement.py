"""Unit tests for the DLPSW approximate agreement substrate."""

import random

import pytest

from repro.multiset import (
    RandomValueStrategy,
    SpoilerStrategy,
    TwoFacedStrategy,
    mean_convergence_rate,
    midpoint_convergence_rate,
    run_approximate_agreement,
)


class TestProtocolBasics:
    def test_fault_free_single_round_collapses_with_midpoint(self):
        result = run_approximate_agreement([0.0, 1.0, 2.0, 4.0], f=0, rounds=1)
        assert result.final_spread == 0.0

    def test_spread_halves_per_round_with_f_faults(self):
        initial = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
        result = run_approximate_agreement(initial, f=2, rounds=5,
                                           byzantine_ids=[5, 6])
        for before, after in zip(result.spreads, result.spreads[1:]):
            assert after <= before / 2.0 + 1e-9

    def test_final_values_within_initial_correct_range(self):
        initial = [3.0, 5.0, 4.0, 4.5, 3.5, 100.0, -100.0]
        result = run_approximate_agreement(initial, f=2, rounds=4,
                                           byzantine_ids=[5, 6],
                                           strategy=SpoilerStrategy())
        for value in result.final_values.values():
            assert 3.0 <= value <= 5.0

    def test_factors_computed(self):
        result = run_approximate_agreement([0.0, 1.0, 2.0, 3.0], f=1, rounds=3,
                                           byzantine_ids=[3])
        assert len(result.factors) == 3
        assert all(f <= 0.5 + 1e-9 for f in result.factors)

    def test_zero_rounds_returns_initial_spread(self):
        result = run_approximate_agreement([1.0, 4.0, 2.0, 3.0], f=1, rounds=0)
        assert result.spreads == [3.0]
        assert result.final_spread == 3.0

    def test_mean_variant_converges(self):
        initial = [0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0]
        result = run_approximate_agreement(initial, f=2, rounds=6,
                                           byzantine_ids=[0, 6], use_mean=True)
        assert result.final_spread < result.spreads[0] / 4.0


class TestStrategies:
    def test_random_strategy_values_bounded_by_inflation(self):
        strategy = RandomValueStrategy(random.Random(1), inflation=2.0)
        value = strategy.value_for(0, 5, 1, [0.0, 1.0])
        assert -2.0 - 1.0 <= value <= 1.0 + 2.0 + 1.0

    def test_two_faced_sends_different_values(self):
        strategy = TwoFacedStrategy()
        high = strategy.value_for(0, 5, 0, [0.0, 1.0])
        low = strategy.value_for(0, 5, 1, [0.0, 1.0])
        assert high > 1.0 and low < 0.0

    def test_spoiler_sign(self):
        assert SpoilerStrategy(sign=-1).value_for(0, 0, 0, [1.0]) < 0
        assert SpoilerStrategy(sign=+1).value_for(0, 0, 0, [1.0]) > 0


class TestValidation:
    def test_empty_initial_values_rejected(self):
        with pytest.raises(ValueError):
            run_approximate_agreement([], f=0, rounds=1)

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            run_approximate_agreement([1.0], f=0, rounds=-1)

    def test_out_of_range_byzantine_id_rejected(self):
        with pytest.raises(ValueError):
            run_approximate_agreement([1.0, 2.0], f=0, rounds=1, byzantine_ids=[5])

    def test_all_byzantine_rejected(self):
        with pytest.raises(ValueError):
            run_approximate_agreement([1.0], f=0, rounds=1, byzantine_ids=[0])


class TestConvergenceRates:
    def test_midpoint_rate(self):
        assert midpoint_convergence_rate() == 0.5

    def test_mean_rate_formula(self):
        assert mean_convergence_rate(7, 2) == pytest.approx(2 / 3)
        assert mean_convergence_rate(10, 1) == pytest.approx(1 / 8)

    def test_mean_rate_zero_faults(self):
        assert mean_convergence_rate(5, 0) == 0.0

    def test_mean_rate_requires_n_over_2f(self):
        with pytest.raises(ValueError):
            mean_convergence_rate(4, 2)

    def test_mean_rate_improves_with_n(self):
        # Section 7: with f fixed, larger n converges faster with the mean.
        assert mean_convergence_rate(20, 2) < mean_convergence_rate(8, 2)
