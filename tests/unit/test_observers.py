"""Unit tests for the streaming observer pipeline (repro.sim.observers).

The pipeline's contract has three pillars:

* **bit-identity** — attaching observers (or detaching the default trace
  recorder) must not change the run: same RNG consumption, same corrections,
  same statistics;
* **exactly-once, in-order notification** — every dispatched interrupt, every
  correction, every end-to-end send is reported once, in real-time order;
* **bounded memory** — with ``record_trace=False`` nothing grows with the
  horizon except what observers choose to keep.
"""

import pickle

import pytest

from repro.analysis.experiments import (
    default_parameters,
    make_fault_process,
    run_maintenance_scenario,
)
from repro.clocks import PerfectClock
from repro.clocks.drift import make_clock_ensemble
from repro.core.maintenance import WelchLynchProcess
from repro.sim import (
    EventBudgetExceeded,
    FixedDelayModel,
    Observer,
    ObserverError,
    Process,
    System,
    TraceRecorder,
    UniformDelayModel,
)


class Chatter(Process):
    """Broadcasts at start, acks one message, arms one timer."""

    def on_start(self, ctx):
        ctx.broadcast("hello")
        ctx.set_timer_physical(ctx.physical_time() + 0.5, "tick")
        ctx.log("started")

    def on_message(self, ctx, sender, payload):
        if payload == "hello" and sender != ctx.process_id:
            ctx.send(sender, "ack")

    def on_timer(self, ctx, payload=None):
        ctx.adjust_correction(0.001, round_index=0)
        ctx.log("ticked", payload=payload)


class CountingObserver(Observer):
    """Overrides every hook and counts invocations."""

    name = "counting"

    def __init__(self):
        self.dispatches = []
        self.sends = []
        self.logs = []
        self.corrections = []
        self.advances = []
        self.finalized = 0

    def on_dispatch(self, kind, sender, recipient, payload, send_time, time):
        self.dispatches.append((time, kind, sender, recipient))

    def on_send(self, sender, recipient, send_time, delivery_time):
        self.sends.append((send_time, sender, recipient, delivery_time))

    def on_log(self, event):
        self.logs.append(event)

    def on_correction(self, pid, real_time, adjustment, new_correction,
                      round_index):
        self.corrections.append((real_time, pid, adjustment, new_correction))

    def on_advance(self, time):
        self.advances.append(time)

    def on_finalize(self):
        self.finalized += 1


class CorrectionOnly(Observer):
    name = "corrections"

    def __init__(self):
        self.seen = []

    def on_correction(self, pid, real_time, adjustment, new_correction,
                      round_index):
        self.seen.append((real_time, pid))


def _small_system(observers=None, record_trace=True, n=3, seed=7):
    processes = [Chatter() for _ in range(n)]
    clocks = [PerfectClock(offset=0.0) for _ in range(n)]
    system = System(processes, clocks,
                    delay_model=UniformDelayModel(0.01, 0.002), seed=seed,
                    observers=observers, record_trace=record_trace)
    for pid in range(n):
        system.schedule_start(pid, 0.0)
    return system


class TestSubscription:
    def test_base_observer_subscribes_to_nothing(self):
        observer = Observer()
        assert not any(observer.subscribed(hook) for hook in
                       ("on_dispatch", "on_send", "on_log", "on_correction",
                        "on_advance"))

    def test_overriding_subscribes(self):
        observer = CorrectionOnly()
        assert observer.subscribed("on_correction")
        assert not observer.subscribed("on_dispatch")

    def test_trace_recorder_is_default_observer(self):
        system = _small_system()
        assert any(isinstance(obs, TraceRecorder)
                   for obs in system.observers)
        assert system.record_trace

    def test_no_trace_drops_the_recorder(self):
        system = _small_system(record_trace=False)
        assert not any(isinstance(obs, TraceRecorder)
                       for obs in system.observers)
        assert not system.record_trace


class TestNotifications:
    def test_every_hook_fires(self):
        observer = CountingObserver()
        system = _small_system(observers=[observer])
        trace = system.run_until(2.0)
        system.finalize_observers()
        stats = trace.stats
        # Dispatches = STARTs + deliveries + timer firings.
        assert len(observer.dispatches) == \
            3 + stats.delivered + stats.timers_fired
        assert len(observer.sends) == stats.sent
        assert len(observer.logs) == len(trace.events)
        # One correction per process (in on_timer).
        assert len(observer.corrections) == 3
        assert observer.advances == [2.0]
        assert observer.finalized == 1

    def test_notifications_arrive_in_time_order(self):
        observer = CountingObserver()
        system = _small_system(observers=[observer])
        system.run_until(2.0)
        times = [entry[0] for entry in observer.dispatches]
        assert times == sorted(times)
        correction_times = [entry[0] for entry in observer.corrections]
        assert correction_times == sorted(correction_times)

    def test_log_events_identical_to_trace(self):
        observer = CountingObserver()
        system = _small_system(observers=[observer])
        trace = system.run_until(2.0)
        assert observer.logs == list(trace.events)

    def test_dropped_sends_report_none(self):
        class DropAll(FixedDelayModel):
            def delay(self, sender, recipient, send_time, rng):
                return None

        observer = CountingObserver()
        processes = [Chatter() for _ in range(2)]
        clocks = [PerfectClock(offset=0.0) for _ in range(2)]
        system = System(processes, clocks, delay_model=DropAll(0.01), seed=1,
                        observers=[observer])
        for pid in range(2):
            system.schedule_start(pid, 0.0)
        trace = system.run_until(1.0)
        assert trace.stats.dropped == trace.stats.sent > 0
        assert all(entry[3] is None for entry in observer.sends)

    def test_add_observer_mid_life(self):
        system = _small_system()
        observer = system.add_observer(CorrectionOnly())
        system.run_until(2.0)
        assert len(observer.seen) == 3

    def test_set_initial_correction_notifies(self):
        observer = CorrectionOnly()
        system = _small_system(observers=[observer])
        system.set_initial_correction(0, 0.25)
        assert observer.seen and observer.seen[0][1] == 0
        assert system.correction_history(0).initial_correction == 0.25


class TestBitIdentity:
    """Observers must be pure taps: no RNG draws, no behavioural change."""

    def _trace_fingerprint(self, trace, n):
        return (
            [(e.real_time, e.process_id, e.name,
              tuple(sorted(e.data.items()))) for e in trace.events],
            {pid: tuple(trace.correction_history(pid).corrections)
             for pid in range(n)},
            (trace.stats.sent, trace.stats.delivered, trace.stats.dropped,
             trace.stats.timers_set, trace.stats.timers_fired),
        )

    def test_attached_observer_changes_nothing(self, medium_params):
        plain = run_maintenance_scenario(medium_params, rounds=4, seed=9)
        observed = run_maintenance_scenario(
            medium_params, rounds=4, seed=9,
            observers=[CountingObserver()])
        n = medium_params.n
        assert self._trace_fingerprint(plain.trace, n) == \
            self._trace_fingerprint(observed.trace, n)

    def test_network_observer_changes_nothing(self, medium_params):
        # The send-sink path reroutes broadcast_from through post_message;
        # RNG draws and counters must still be byte-identical.
        plain = run_maintenance_scenario(medium_params, rounds=4, seed=9)
        observed = run_maintenance_scenario(
            medium_params, rounds=4, seed=9,
            observers=lambda system, starts, end, params: [
                CountingObserver()])
        n = medium_params.n
        assert self._trace_fingerprint(plain.trace, n) == \
            self._trace_fingerprint(observed.trace, n)

    def test_no_trace_same_corrections(self, medium_params):
        recorded = run_maintenance_scenario(medium_params, rounds=4, seed=9)
        streamed = run_maintenance_scenario(medium_params, rounds=4, seed=9,
                                            record_trace=False)
        for pid in range(medium_params.n):
            assert (streamed.trace.correction_history(pid).current()
                    == recorded.trace.correction_history(pid).current())
        assert streamed.trace.stats.sent == recorded.trace.stats.sent
        assert len(streamed.trace.events) == 0


class TestBoundedMemory:
    def test_histories_bounded_without_trace(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8, seed=2,
                                          record_trace=False)
        for pid in range(medium_params.n):
            history = result.trace.correction_history(pid)
            assert history.bounded
            assert len(history.times) <= 8

    def test_histories_unbounded_with_trace(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8, seed=2)
        nonfaulty = result.trace.nonfaulty_ids
        assert any(len(result.trace.correction_history(pid).times) > 8
                   for pid in nonfaulty)


def _exploding_observer(hook):
    """An observer whose ``hook`` method raises; counts how often it fired.

    Built as a real subclass with the hook as a method (the pipeline
    dispatches bound methods, which is also how it attributes failures).
    """

    def boom(self, *_args, **_kwargs):
        self.fired += 1
        raise ValueError("observer bug")

    cls = type("ExplodesObserver", (Observer,),
               {"name": "exploding", hook: boom,
                "__init__": lambda self: setattr(self, "fired", 0)})
    return cls()


class TestObserverFailure:
    """A raising observer surfaces a clear error and leaves the System sane."""

    @pytest.mark.parametrize("hook", ["on_dispatch", "on_send", "on_log",
                                      "on_correction", "on_advance"])
    def test_failure_names_hook_and_observer(self, hook):
        bad = _exploding_observer(hook)
        system = _small_system(observers=[bad])
        with pytest.raises(ObserverError) as excinfo:
            system.run_until(2.0)
        err = excinfo.value
        assert err.hook == hook
        assert err.observer is bad
        assert hook in str(err) and "ExplodesObserver" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_finalize_failure_names_hook(self):
        bad = _exploding_observer("on_finalize")
        system = _small_system(observers=[bad])
        system.run_until(2.0)
        with pytest.raises(ObserverError) as excinfo:
            system.finalize_observers()
        assert excinfo.value.hook == "on_finalize"
        assert excinfo.value.observer is bad

    def test_dispatch_failure_keeps_counters_consistent(self):
        # The interrupt being reported was fully processed before the tap
        # blew up, so the dispatch counter must include it.
        good = CountingObserver()
        bad = _exploding_observer("on_dispatch")
        system = _small_system(observers=[good, bad])
        with pytest.raises(ObserverError):
            system.run_until(2.0)
        assert bad.fired == 1
        assert system.events_dispatched == len(good.dispatches)

    def test_remove_observer_recovers_the_run(self):
        bad = _exploding_observer("on_correction")
        system = _small_system(observers=[bad])
        with pytest.raises(ObserverError):
            system.run_until(2.0)
        system.remove_observer(bad)
        trace = system.run_until(2.0)  # resumes from where it stopped
        assert trace.stats.timers_fired == 3
        history = system.correction_history(0)
        assert history.current() != 0.0

    def test_failed_run_matches_clean_prefix(self):
        # Everything dispatched before the failure is identical to a clean
        # run: the observer pipeline never half-applies an interrupt.
        clean_system = _small_system()
        clean = clean_system.run_until(2.0)
        bad = _exploding_observer("on_advance")  # fires only at segment end
        system = _small_system(observers=[bad])
        with pytest.raises(ObserverError):
            system.run_until(2.0)
        assert system.events_dispatched == clean_system.events_dispatched
        assert (system.trace().stats.sent, system.trace().stats.delivered) \
            == (clean.stats.sent, clean.stats.delivered)

    def test_remove_recorder_stops_recording(self):
        system = _small_system()
        recorder = next(obs for obs in system.observers
                        if isinstance(obs, TraceRecorder))
        system.remove_observer(recorder)
        assert not system.record_trace
        trace = system.run_until(2.0)
        assert len(trace.events) == 0
        assert trace.stats.sent > 0  # counters still tally


class TestEventBudget:
    def test_budget_exceeded_carries_counts(self):
        system = _small_system()
        with pytest.raises(EventBudgetExceeded) as excinfo:
            system.run_until(2.0, max_events=4)
        err = excinfo.value
        assert err.processed == 5
        assert err.max_events == 4
        assert err.end_time == 2.0
        assert "budget" in str(err)

    def test_budget_is_a_runtime_error(self):
        system = _small_system()
        with pytest.raises(RuntimeError):
            system.run_until(2.0, max_events=1)

    def test_budget_pickles_with_attributes(self):
        err = EventBudgetExceeded(processed=11, max_events=10,
                                  current_time=1.5, end_time=3.0, pending=4)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.processed == 11 and clone.max_events == 10
        assert clone.pending == 4 and clone.current_time == 1.5

    def test_budget_metrics_survive_pickling(self):
        snapshot = {"sim.events_dispatched": {"kind": "counter", "value": 11}}
        err = EventBudgetExceeded(processed=11, max_events=10,
                                  current_time=1.5, end_time=3.0, pending=4,
                                  metrics=snapshot)
        clone = pickle.loads(pickle.dumps(err))
        assert clone.metrics == snapshot

    def test_budget_carries_metrics_snapshot_when_instrumented(self):
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        processes = [Chatter() for _ in range(3)]
        clocks = [PerfectClock(offset=0.0) for _ in range(3)]
        system = System(processes, clocks,
                        delay_model=UniformDelayModel(0.01, 0.002), seed=7,
                        telemetry=telemetry)
        for pid in range(3):
            system.schedule_start(pid, 0.0)
        with pytest.raises(EventBudgetExceeded) as excinfo:
            system.run_until(2.0, max_events=4)
        metrics = excinfo.value.metrics
        assert metrics is not None
        assert metrics["sim.events_dispatched"]["value"] == 5


class TestSnapshotUnit:
    def test_snapshot_restore_roundtrip_is_identical(self, medium_params):
        params = medium_params
        rounds = 4

        def build():
            processes = [WelchLynchProcess(params, max_rounds=rounds)
                         for _ in range(params.n - 1)]
            processes.append(make_fault_process("two_faced", params, rounds))
            clocks = make_clock_ensemble(params.n, rho=params.rho,
                                         beta=params.beta, seed=5,
                                         kind="constant")
            system = System(processes, clocks,
                            delay_model=UniformDelayModel(params.delta,
                                                          params.epsilon),
                            seed=5)
            system.schedule_all_starts_at_logical(params.initial_round_time)
            return system

        end = params.initial_round_time + rounds * params.round_length + 0.5
        unsplit = build().run_until(end)

        split_system = build()
        split_system.run_until(end * 0.41)
        snapshot = pickle.loads(pickle.dumps(split_system.snapshot()))
        split = split_system.restore(snapshot).run_until(end)

        assert [e.real_time for e in unsplit.events] == \
            [e.real_time for e in split.events]
        for pid in range(params.n):
            assert (tuple(unsplit.correction_history(pid).corrections)
                    == tuple(split.correction_history(pid).corrections))
        assert unsplit.stats.sent == split.stats.sent

    def test_restore_twice_from_one_snapshot(self):
        system = _small_system()
        system.run_until(0.4)
        snapshot = system.snapshot()
        first = system.restore(snapshot).run_until(2.0)
        first_times = [e.real_time for e in first.events]
        second = system.restore(snapshot).run_until(2.0)
        assert [e.real_time for e in second.events] == first_times

    def test_snapshot_records_position(self):
        system = _small_system()
        system.run_until(0.4)
        snapshot = system.snapshot()
        assert snapshot.time == 0.4
        assert snapshot.events_dispatched == system.events_dispatched
        assert len(snapshot) > 0
