"""Smoke tests for the ``python -m repro`` entry point (src/repro/__main__.py).

These run the module in a real subprocess, so they cover the ``__main__``
wiring (argument passing, exit codes, stdout) that in-process CLI tests
cannot reach.
"""

import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _run_module(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          capture_output=True, text=True, env=env, timeout=120)


class TestMainModule:
    def test_version_flag_exits_zero_with_version(self):
        from repro import __version__
        proc = _run_module("--version")
        assert proc.returncode == 0, proc.stderr
        assert __version__ in proc.stdout

    def test_topologies_lists_generators(self):
        proc = _run_module("topologies")
        assert proc.returncode == 0, proc.stderr
        for name in ("complete", "ring", "grid", "random_gnp"):
            assert name in proc.stdout

    def test_no_subcommand_exits_nonzero_with_usage(self):
        proc = _run_module()
        assert proc.returncode != 0
        assert "usage" in proc.stderr.lower()
