"""Unit tests for repro.analysis.verification (the theorem checker)."""

import pytest

from repro.analysis import (
    check_maintenance_run,
    check_startup_run,
    format_report,
    run_maintenance_scenario,
    run_startup_scenario,
)
from repro.core import PlainMean, agreement_bound


class TestMaintenanceReport:
    def test_clean_run_passes_every_claim(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="two_faced", seed=0)
        report = check_maintenance_run(result)
        assert report.all_passed
        assert report.failed() == []
        names = {check.claim for check in report.checks}
        assert names == {"theorem4a_adjustment", "theorem4c_round_spread",
                         "theorem16_agreement", "theorem19_validity"}

    def test_measured_values_are_consistent_with_bounds(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="skew_late", seed=1)
        report = check_maintenance_run(result)
        agreement = report.check("theorem16_agreement")
        assert agreement.bound == pytest.approx(agreement_bound(medium_params))
        assert 0 < agreement.measured <= agreement.bound
        spread = report.check("theorem4c_round_spread")
        assert spread.bound == medium_params.beta

    def test_lookup_of_unknown_claim_raises(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=5,
                                          fault_kind=None, seed=2)
        report = check_maintenance_run(result)
        with pytest.raises(KeyError):
            report.check("theorem42")

    def test_broken_algorithm_is_flagged(self, medium_params):
        """Replacing the averaging with a plain mean under attack fails the audit.

        The random-noise attackers report round values that are many rounds
        off; without the ``reduce`` step those values reach the average and
        wreck the adjustments, which the checker must flag.
        """
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="random_noise",
                                          averaging=PlainMean(), seed=3)
        report = check_maintenance_run(result)
        assert not report.all_passed
        failed_names = {check.claim for check in report.failed()}
        # The plain mean lets the attackers push adjustments and/or skew past
        # the bounds; at least one of the agreement-related claims must fail.
        assert failed_names & {"theorem16_agreement", "theorem4a_adjustment",
                               "theorem4c_round_spread"}

    def test_format_report_mentions_verdict(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=5,
                                          fault_kind=None, seed=4)
        text = format_report(check_maintenance_run(result))
        assert "theorem16_agreement" in text
        assert "all claims hold" in text

    def test_format_report_lists_violations(self, medium_params):
        result = run_maintenance_scenario(medium_params, rounds=8,
                                          fault_kind="random_noise",
                                          averaging=PlainMean(), seed=5)
        text = format_report(check_maintenance_run(result))
        assert "VIOLATED" in text


class TestStartupReport:
    def test_startup_run_satisfies_lemma20_every_round(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=8, initial_spread=1.0,
                                      seed=6)
        report = check_startup_run(result)
        assert report.all_passed
        assert len(report.checks) >= 5
        assert all(check.claim.startswith("lemma20_round_") for check in report.checks)

    def test_bounds_follow_the_recurrence(self, medium_params):
        result = run_startup_scenario(medium_params, rounds=6, initial_spread=0.5,
                                      seed=7)
        report = check_startup_run(result)
        bounds = [check.bound for check in report.checks]
        # The recurrence bound itself decays (roughly halves) round over round
        # while the spreads are far from the fixed point.
        assert bounds[1] < bounds[0]
