"""Unit tests for execution traces."""

import pytest

from repro.clocks import ConstantRateClock, CorrectionHistory, PerfectClock
from repro.sim import ExecutionTrace, MessageStats, TraceEvent


def make_trace(faulty=(), end_time=10.0):
    clocks = {0: PerfectClock(offset=0.0),
              1: PerfectClock(offset=0.5),
              2: ConstantRateClock(offset=1.0, rate=1.0, rho=1e-6)}
    histories = {pid: CorrectionHistory(0.0) for pid in clocks}
    histories[1].apply(5.0, -0.5, round_index=0)
    events = [TraceEvent(real_time=1.0, process_id=0, name="broadcast",
                         data={"round_index": 0}),
              TraceEvent(real_time=1.2, process_id=1, name="broadcast",
                         data={"round_index": 0}),
              TraceEvent(real_time=2.0, process_id=0, name="update",
                         data={"round_index": 0, "adjustment": 0.1})]
    stats = MessageStats(sent=12, delivered=10, dropped=2)
    return ExecutionTrace(clocks=clocks, histories=histories, faulty_ids=faulty,
                          events=events, stats=stats, end_time=end_time)


class TestBasicAccessors:
    def test_n_and_end_time(self):
        trace = make_trace()
        assert trace.n == 3
        assert trace.end_time == 10.0

    def test_faulty_and_nonfaulty_ids(self):
        trace = make_trace(faulty=[2])
        assert trace.faulty_ids == frozenset({2})
        assert trace.nonfaulty_ids == [0, 1]

    def test_stats_passthrough(self):
        assert make_trace().stats.sent == 12

    def test_events_named(self):
        trace = make_trace()
        assert len(trace.events_named("broadcast")) == 2
        assert len(trace.events_named("broadcast", process_id=1)) == 1
        assert trace.events_named("nothing") == []


class TestClockReconstruction:
    def test_local_time_before_and_after_correction(self):
        trace = make_trace()
        # Process 1 has offset 0.5 and applies -0.5 at real time 5.
        assert trace.local_time(1, 4.0) == pytest.approx(4.5)
        assert trace.local_time(1, 6.0) == pytest.approx(6.0)

    def test_local_times_excludes_faulty_by_default(self):
        trace = make_trace(faulty=[2])
        times = trace.local_times(1.0)
        assert set(times) == {0, 1}
        all_times = trace.local_times(1.0, include_faulty=True)
        assert set(all_times) == {0, 1, 2}

    def test_adjustments(self):
        trace = make_trace()
        assert trace.adjustments(1) == [-0.5]
        assert trace.adjustments(0) == []

    def test_view_returns_logical_view(self):
        trace = make_trace()
        view = trace.view(1)
        assert view.local_time(6.0) == pytest.approx(6.0)


class TestSkew:
    def test_skew_at_time(self):
        trace = make_trace(faulty=[2])
        # At t=1: process 0 reads 1.0, process 1 reads 1.5.
        assert trace.skew(1.0) == pytest.approx(0.5)
        # After process 1's correction the skew closes.
        assert trace.skew(6.0) == pytest.approx(0.0)

    def test_skew_series_and_max(self):
        trace = make_trace(faulty=[2])
        series = trace.skew_series([1.0, 6.0])
        assert series[0][1] == pytest.approx(0.5)
        assert trace.max_skew([1.0, 6.0]) == pytest.approx(0.5)

    def test_max_skew_empty_times(self):
        assert make_trace().max_skew([]) == 0.0

    def test_single_process_skew_is_zero(self):
        trace = make_trace(faulty=[1, 2])
        assert trace.skew(3.0) == 0.0
