"""Unit tests for measured delay envelopes (repro.net.measure)."""

import pytest

from repro.net.measure import DelayEnvelope, MeasuredEnvelope
from repro.sim.recording import MessageRecord, envelope_violations


def filled(delays, jitter_margin=0.025):
    envelope = MeasuredEnvelope(jitter_margin=jitter_margin)
    for index, delay in enumerate(delays):
        envelope.add(0, 1, float(index), delay)
    return envelope


class TestRecording:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="negative delay"):
            MeasuredEnvelope().add(0, 1, 0.0, -1e-4)

    def test_dropped_record_rejected(self):
        dropped = MessageRecord(sender=0, recipient=1, send_time=0.0,
                                delay=None)
        with pytest.raises(ValueError, match="dropped"):
            MeasuredEnvelope().record(dropped)

    def test_empty_envelope_cannot_derive(self):
        with pytest.raises(ValueError, match="no delay observations"):
            MeasuredEnvelope().derive()

    def test_merge_folds_evidence(self):
        left = filled([1e-4, 2e-4])
        right = filled([5e-4])
        left.merge(right)
        assert len(left) == 3
        assert left.observed_span() == (1e-4, 5e-4)


class TestDerivation:
    def test_envelope_covers_every_observation(self):
        delays = [2e-4, 3e-4, 8e-4]
        envelope = filled(delays).derive()
        assert envelope.lower <= min(delays)
        assert envelope.upper >= max(delays)
        assert envelope.samples == 3
        assert envelope.observed_min == 2e-4
        assert envelope.observed_max == 8e-4

    def test_a3_shape_holds(self):
        # Assumption A3 needs 0 <= epsilon < delta, i.e. a strictly
        # positive envelope lower edge — even from extreme observations.
        for delays in ([1e-7], [0.0, 1e-3], [5e-4] * 10, [0.0]):
            envelope = filled(delays).derive()
            assert envelope.epsilon >= 0
            assert envelope.epsilon < envelope.delta
            assert envelope.lower > 0

    def test_zero_jitter_margin_single_sample_still_feasible(self):
        envelope = filled([3e-4], jitter_margin=0.0).derive()
        assert envelope.epsilon < envelope.delta
        assert envelope.lower <= 3e-4 <= envelope.upper

    def test_negative_jitter_margin_rejected(self):
        with pytest.raises(ValueError, match="jitter_margin"):
            MeasuredEnvelope(jitter_margin=-0.1)

    def test_records_feed_a3_audit_cleanly(self):
        recorder = filled([2e-4, 4e-4, 6e-4])
        envelope = recorder.derive()
        violations = envelope_violations(recorder.records, envelope.delta,
                                         envelope.epsilon)
        assert violations == []

    def test_as_dict_roundtrips_fields(self):
        envelope = filled([2e-4]).derive()
        data = envelope.as_dict()
        assert data["delta"] == envelope.delta
        assert data["epsilon"] == envelope.epsilon
        assert data["samples"] == 1
        assert data["jitter_margin"] == 0.025


class TestDeriveParameters:
    def test_derived_parameters_are_feasible(self):
        params, envelope = filled([2e-4, 5e-4]).derive_parameters(
            n=4, f=1, rho=1e-5)
        assert params.n == 4 and params.f == 1
        assert params.delta == envelope.delta
        assert params.epsilon == envelope.epsilon
        # require_feasible() already ran; re-run for the assertion message
        params.require_feasible()

    def test_round_length_factor_sets_cadence(self):
        loose, _ = filled([2e-4]).derive_parameters(
            n=4, f=1, rho=1e-5, round_length_factor=2.0)
        tight, _ = filled([2e-4]).derive_parameters(
            n=4, f=1, rho=1e-5, round_length_factor=1.25)
        assert loose.round_length == pytest.approx(
            tight.round_length * 2.0 / 1.25)
