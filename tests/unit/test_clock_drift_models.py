"""Unit tests for the ρ-bounded physical clock models."""

import math

import pytest

from repro.clocks import (
    ConstantRateClock,
    PerfectClock,
    PiecewiseLinearClock,
    RandomRateWalkClock,
    SinusoidalDriftClock,
    make_clock_ensemble,
    rho_rate_bounds,
)


class TestRhoRateBounds:
    def test_interval(self):
        lo, hi = rho_rate_bounds(0.01)
        assert lo == pytest.approx(1 / 1.01)
        assert hi == pytest.approx(1.01)

    def test_zero_rho(self):
        assert rho_rate_bounds(0.0) == (1.0, 1.0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            rho_rate_bounds(-1e-9)


class TestPerfectClock:
    def test_reads_real_time_plus_offset(self):
        clock = PerfectClock(offset=3.0)
        assert clock.read(10.0) == 13.0
        assert clock.real_time_at(13.0) == 10.0

    def test_rate_is_one(self):
        assert PerfectClock().rate_at(123.0) == 1.0

    def test_elapsed(self):
        assert PerfectClock(offset=5.0).elapsed(1.0, 4.0) == 3.0


class TestConstantRateClock:
    def test_forward_and_inverse_are_consistent(self):
        clock = ConstantRateClock(offset=0.5, rate=1.00005, rho=1e-4)
        for t in (-10.0, 0.0, 7.3, 1234.5):
            assert clock.real_time_at(clock.read(t)) == pytest.approx(t, abs=1e-9)

    def test_rate_outside_band_rejected(self):
        with pytest.raises(ValueError):
            ConstantRateClock(rate=1.1, rho=1e-4)
        with pytest.raises(ValueError):
            ConstantRateClock(rate=0.9, rho=1e-4)

    def test_rate_at(self):
        assert ConstantRateClock(rate=1.00005, rho=1e-3).rate_at(42.0) == 1.00005

    def test_monotone(self):
        clock = ConstantRateClock(offset=-2.0, rate=0.9999, rho=1e-3)
        assert clock.read(2.0) > clock.read(1.0)


class TestPiecewiseLinearClock:
    def make(self):
        return PiecewiseLinearClock(offset=1.0, rates=[1.0001, 0.9999, 1.0],
                                    breakpoints=[10.0, 20.0], rho=1e-3)

    def test_reading_at_zero_is_offset(self):
        assert self.make().read(0.0) == 1.0

    def test_reading_is_continuous_at_breakpoints(self):
        clock = self.make()
        for b in (10.0, 20.0):
            assert clock.read(b - 1e-9) == pytest.approx(clock.read(b + 1e-9), abs=1e-6)

    def test_segment_rates(self):
        clock = self.make()
        assert clock.rate_at(5.0) == 1.0001
        assert clock.rate_at(15.0) == 0.9999
        assert clock.rate_at(25.0) == 1.0

    def test_forward_inverse_consistency(self):
        clock = self.make()
        for t in (-5.0, 0.0, 5.0, 12.0, 25.0, 100.0):
            assert clock.real_time_at(clock.read(t)) == pytest.approx(t, abs=1e-7)

    def test_negative_time_integration(self):
        clock = PiecewiseLinearClock(offset=0.0, rates=[1.0001], breakpoints=[],
                                     rho=1e-3)
        assert clock.read(-10.0) == pytest.approx(-1.0001 * 10.0)

    def test_rates_must_match_breakpoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearClock(rates=[1.0], breakpoints=[1.0], rho=1e-3)

    def test_unsorted_breakpoints_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearClock(rates=[1.0, 1.0, 1.0], breakpoints=[5.0, 2.0], rho=1e-3)

    def test_out_of_band_rate_rejected(self):
        with pytest.raises(ValueError):
            PiecewiseLinearClock(rates=[1.5], breakpoints=[], rho=1e-3)


class TestSinusoidalDriftClock:
    def make(self):
        return SinusoidalDriftClock(offset=2.0, amplitude=5e-5, period=100.0,
                                    phase=0.3, rho=1e-4)

    def test_reading_at_zero_is_offset(self):
        assert self.make().read(0.0) == pytest.approx(2.0)

    def test_rate_stays_in_band(self):
        clock = self.make()
        lo, hi = rho_rate_bounds(clock.rho)
        for t in range(0, 500, 7):
            assert lo - 1e-12 <= clock.rate_at(float(t)) <= hi + 1e-12

    def test_forward_inverse_consistency(self):
        clock = self.make()
        for t in (0.0, 12.3, 77.7, 400.0):
            assert clock.real_time_at(clock.read(t)) == pytest.approx(t, abs=1e-6)

    def test_amplitude_above_band_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalDriftClock(amplitude=1e-3, rho=1e-4)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            SinusoidalDriftClock(period=0.0, rho=1e-4)


class TestRandomRateWalkClock:
    def test_deterministic_given_seed(self):
        a = RandomRateWalkClock(seed=42, rho=1e-4)
        b = RandomRateWalkClock(seed=42, rho=1e-4)
        assert a.read(123.4) == b.read(123.4)

    def test_different_seeds_differ(self):
        a = RandomRateWalkClock(seed=1, rho=1e-4, offset=0.0)
        b = RandomRateWalkClock(seed=2, rho=1e-4, offset=0.0)
        assert a.read(5000.0) != b.read(5000.0)

    def test_rates_within_band(self):
        clock = RandomRateWalkClock(seed=7, rho=1e-4)
        lo, hi = rho_rate_bounds(1e-4)
        assert all(lo <= r <= hi for r in clock.rates)

    def test_invalid_segments_rejected(self):
        with pytest.raises(ValueError):
            RandomRateWalkClock(segment_length=0.0)


class TestClockEnsemble:
    def test_size_and_rho(self):
        clocks = make_clock_ensemble(5, rho=1e-4, beta=0.01, seed=3)
        assert len(clocks) == 5
        assert all(c.rho == 1e-4 for c in clocks)

    def test_initial_spread_within_beta(self):
        beta = 0.01
        clocks = make_clock_ensemble(9, rho=1e-4, beta=beta, seed=11)
        readings = [c.read(0.0) for c in clocks]
        assert max(readings) - min(readings) <= beta + 1e-12

    def test_all_kinds_construct(self):
        for kind in ("perfect", "constant", "piecewise", "sinusoidal", "walk"):
            clocks = make_clock_ensemble(4, rho=1e-4, beta=0.01, seed=5, kind=kind)
            assert len(clocks) == 4
            # Forward/inverse sanity for each kind.
            for clock in clocks:
                t = 3.7
                assert clock.real_time_at(clock.read(t)) == pytest.approx(t, abs=1e-5)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_clock_ensemble(3, rho=1e-4, beta=0.01, kind="bogus")

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            make_clock_ensemble(0, rho=1e-4, beta=0.01)

    def test_deterministic_given_seed(self):
        a = make_clock_ensemble(6, rho=1e-4, beta=0.01, seed=9)
        b = make_clock_ensemble(6, rho=1e-4, beta=0.01, seed=9)
        assert [c.read(10.0) for c in a] == [c.read(10.0) for c in b]
