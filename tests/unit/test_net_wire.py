"""Unit tests for the length-prefixed JSON wire codec (repro.net.wire)."""

import math
import struct

import pytest

from repro.core.messages import ReadyMessage, RoundMessage, TimeMessage
from repro.net.wire import (
    MAX_FRAME,
    WireError,
    decode_message,
    encode_message,
    pack_frame,
    unpack_frames,
)
from repro.sim.events import Message, MessageKind


class TestFrames:
    def test_pack_then_unpack_roundtrips(self):
        body = {"type": "ping", "seq": 3, "t": 1.25}
        frames, rest = unpack_frames(pack_frame(body))
        assert frames == [body]
        assert rest == b""

    def test_multiple_frames_in_one_buffer(self):
        buffer = pack_frame({"a": 1}) + pack_frame({"b": 2})
        frames, rest = unpack_frames(buffer)
        assert frames == [{"a": 1}, {"b": 2}]
        assert rest == b""

    def test_partial_frame_returned_as_rest(self):
        whole = pack_frame({"type": "hello", "sender": 0})
        for cut in (1, 3, 4, len(whole) - 1):
            frames, rest = unpack_frames(whole[:cut])
            assert frames == []
            assert rest == whole[:cut]
            # feeding the remainder completes the frame
            frames, rest = unpack_frames(rest + whole[cut:])
            assert frames == [{"type": "hello", "sender": 0}]
            assert rest == b""

    def test_oversize_length_prefix_rejected(self):
        hostile = struct.pack(">I", MAX_FRAME + 1) + b"x"
        with pytest.raises(WireError, match="MAX_FRAME"):
            unpack_frames(hostile)

    def test_oversize_body_rejected_at_pack(self):
        with pytest.raises(WireError, match="MAX_FRAME"):
            pack_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_undecodable_body_rejected(self):
        corrupt = struct.pack(">I", 4) + b"\xff\xfe{]"
        with pytest.raises(WireError, match="undecodable"):
            unpack_frames(corrupt)

    def test_non_object_body_rejected(self):
        payload = b"[1,2]"
        framed = struct.pack(">I", len(payload)) + payload
        with pytest.raises(WireError, match="JSON object"):
            unpack_frames(framed)

    def test_nan_payload_rejected_at_pack(self):
        # allow_nan=False: NaN would not survive a JSON round trip anyway.
        with pytest.raises(ValueError):
            pack_frame({"t": math.nan})


class TestMessages:
    def roundtrip(self, message, delivery_time=None):
        body = encode_message(message)
        # The frame body must survive the actual wire format.
        frames, _ = unpack_frames(pack_frame({"msg": body}))
        return decode_message(frames[0]["msg"], delivery_time=delivery_time)

    def test_round_message_roundtrips(self):
        message = Message(kind=MessageKind.ORDINARY, sender=2, recipient=-1,
                          payload=RoundMessage(round_time=4.5),
                          send_time=1.0, delivery_time=1.001)
        decoded = self.roundtrip(message, delivery_time=1.002)
        assert decoded.kind is MessageKind.ORDINARY
        assert decoded.sender == 2 and decoded.recipient == -1
        assert isinstance(decoded.payload, RoundMessage)
        assert decoded.payload.round_time == 4.5
        assert decoded.send_time == 1.0
        # delivery is receiver-stamped, never the sender's value
        assert decoded.delivery_time == 1.002

    def test_delivery_time_defaults_to_nan_in_flight(self):
        message = Message(kind=MessageKind.ORDINARY, sender=0, recipient=1,
                          payload=TimeMessage(value=2.0),
                          send_time=0.5, delivery_time=0.6)
        decoded = self.roundtrip(message)
        assert math.isnan(decoded.delivery_time)
        assert isinstance(decoded.payload, TimeMessage)
        assert decoded.payload.value == 2.0

    def test_ready_and_scalar_payloads(self):
        ready = Message(kind=MessageKind.ORDINARY, sender=1, recipient=2,
                        payload=ReadyMessage(), send_time=0.0,
                        delivery_time=0.0)
        assert isinstance(self.roundtrip(ready).payload, ReadyMessage)
        for payload in (None, 7, 2.5, "go"):
            message = Message(kind=MessageKind.ORDINARY, sender=0,
                              recipient=1, payload=payload, send_time=0.0,
                              delivery_time=0.0)
            assert self.roundtrip(message).payload == payload

    def test_unencodable_payload_rejected(self):
        message = Message(kind=MessageKind.ORDINARY, sender=0, recipient=1,
                          payload=object(), send_time=0.0, delivery_time=0.0)
        with pytest.raises(WireError, match="no wire encoding"):
            encode_message(message)

    def test_unknown_payload_tag_rejected(self):
        body = encode_message(Message(
            kind=MessageKind.ORDINARY, sender=0, recipient=1,
            payload=RoundMessage(round_time=1.0), send_time=0.0,
            delivery_time=0.0))
        body["payload"]["_type"] = "mystery"
        with pytest.raises(WireError, match="unknown payload tag"):
            decode_message(body)

    def test_malformed_body_rejected(self):
        with pytest.raises(WireError, match="malformed"):
            decode_message({"kind": "ordinary", "sender": 0})
