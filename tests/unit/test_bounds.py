"""Unit tests for the closed-form bounds of the analysis (Sections 5-9)."""

import pytest

from repro.core import (
    SyncParameters,
    adjustment_bound,
    agreement_bound,
    k_exchange_beta,
    lemma9_compensation_error,
    lemma10_separation_bound,
    mean_variant_rate,
    shortest_round_real_time,
    startup_convergence_series,
    startup_limit,
    startup_round_recurrence,
    steady_state_beta,
    validity_envelope,
    validity_holds,
    validity_parameters,
)


@pytest.fixture
def params():
    return SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


class TestAdjustmentAndLemmaBounds:
    def test_adjustment_bound_formula(self, params):
        expected = (1 + params.rho) * (params.beta + params.epsilon) \
            + params.rho * params.delta
        assert adjustment_bound(params) == pytest.approx(expected)

    def test_lemma9_formula(self, params):
        expected = params.beta / 2 + 2 * params.epsilon \
            + 2 * params.rho * (params.beta + params.delta + params.epsilon)
        assert lemma9_compensation_error(params) == pytest.approx(expected)

    def test_lemma10_grows_with_clock_offset(self, params):
        near = lemma10_separation_bound(params, 0.0)
        far = lemma10_separation_bound(params, params.round_length)
        assert far > near
        assert far - near == pytest.approx(2 * params.rho * params.round_length)


class TestAgreement:
    def test_gamma_exceeds_beta_plus_epsilon(self, params):
        assert agreement_bound(params) > params.beta + params.epsilon

    def test_gamma_reduces_to_beta_plus_epsilon_without_drift(self):
        params = SyncParameters(n=7, f=2, rho=0.0, delta=0.01, epsilon=0.002,
                                beta=0.01, round_length=1.0)
        assert agreement_bound(params) == pytest.approx(0.012)

    def test_gamma_monotone_in_beta(self, params):
        assert agreement_bound(params.with_beta(params.beta * 2)) > agreement_bound(params)


class TestValidity:
    def test_lambda_positive_for_feasible_params(self, params):
        assert shortest_round_real_time(params) > 0

    def test_alpha_values_bracket_one(self, params):
        vp = validity_parameters(params)
        assert vp.alpha1 < 1 < vp.alpha2
        assert vp.alpha3 == params.epsilon

    def test_alphas_tighten_with_longer_rounds(self, params):
        short = validity_parameters(params)
        longer = validity_parameters(params.with_round_length(params.P * 2))
        assert longer.alpha2 < short.alpha2
        assert longer.alpha1 > short.alpha1

    def test_envelope_orders_correctly(self, params):
        lower, upper = validity_envelope(params, t=10.0, tmin0=0.0, tmax0=0.01)
        assert lower < upper

    def test_validity_holds_for_perfect_clock(self, params):
        # A local time advancing exactly with real time from T0 must be valid.
        t = 5.0
        assert validity_holds(params, t, params.T0 + (t - 0.0), tmin0=0.0, tmax0=0.0)

    def test_validity_rejects_runaway_clock(self, params):
        t = 100.0
        assert not validity_holds(params, t, params.T0 + 2 * t, tmin0=0.0, tmax0=0.0)

    def test_lambda_error_for_tiny_round_length(self, params):
        tiny = params.with_round_length(1e-6)
        with pytest.raises(ValueError):
            validity_parameters(tiny)


class TestSteadyStateAndVariants:
    def test_steady_state_beta(self, params):
        assert steady_state_beta(params) == pytest.approx(
            4 * params.epsilon + 4 * params.rho * params.P)

    def test_k_exchange_improves_on_basic(self, params):
        basic = steady_state_beta(params)
        k2 = k_exchange_beta(params, 2)
        k4 = k_exchange_beta(params, 4)
        assert k2 < basic
        assert k4 < k2
        # limit as k grows: 4eps + 2 rho P
        assert k_exchange_beta(params, 20) == pytest.approx(
            4 * params.epsilon + 2 * params.rho * params.P, rel=1e-3)

    def test_k_exchange_k1_matches_basic(self, params):
        assert k_exchange_beta(params, 1) == pytest.approx(steady_state_beta(params))

    def test_k_must_be_positive(self, params):
        with pytest.raises(ValueError):
            k_exchange_beta(params, 0)

    def test_mean_variant_rate(self):
        assert mean_variant_rate(7, 2) == pytest.approx(2 / 3)
        assert mean_variant_rate(100, 2) == pytest.approx(2 / 96)
        assert mean_variant_rate(7, 0) == 0.0
        with pytest.raises(ValueError):
            mean_variant_rate(4, 2)


class TestStartupBounds:
    def test_recurrence(self, params):
        b1 = startup_round_recurrence(params, 1.0)
        expected = 0.5 + 2 * params.epsilon \
            + 2 * params.rho * (11 * params.delta + 39 * params.epsilon)
        assert b1 == pytest.approx(expected)

    def test_series_decreases_toward_limit(self, params):
        series = startup_convergence_series(params, 2.0, 20)
        assert len(series) == 21
        assert all(b <= a + 1e-12 for a, b in zip(series, series[1:]))
        assert series[-1] == pytest.approx(startup_limit(params), rel=0.05)

    def test_limit_close_to_4_epsilon(self, params):
        assert startup_limit(params) == pytest.approx(4 * params.epsilon, rel=0.2)
