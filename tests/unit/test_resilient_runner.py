"""Unit tests for the supervised pool and the resilient runner.

Every failure here is chaos-injected on a deterministic schedule, so the
supervision paths (crash respawn, timeout reclaim, retry-then-success,
quarantine, interrupt-and-resume, disk-full degradation) are exercised
reproducibly rather than probabilistically.
"""

import os

import pytest

from repro.analysis import default_parameters
from repro.runner import (
    BatchRunner,
    ChaosFault,
    ChaosSchedule,
    QuarantinedResult,
    ResilientRunner,
    ResultStore,
    RunSpec,
    SupervisedPool,
    SweepInterrupted,
)
from repro.telemetry import Telemetry

#: fast supervision knobs shared by every test: near-instant backoff so
#: retry paths do not slow the suite down.
FAST = dict(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


@pytest.fixture(scope="module")
def params():
    return default_parameters(n=4, f=1)


@pytest.fixture(scope="module")
def specs(params):
    return [RunSpec.maintenance(params, rounds=2, seed=seed)
            for seed in range(4)]


@pytest.fixture(scope="module")
def reference(specs):
    return BatchRunner().run(specs)


def assert_identical(results, reference):
    assert len(results) == len(reference)
    for a, b in zip(results, reference):
        assert a.trace.events == b.trace.events


class TestSupervisedParity:
    def test_serial_supervised_matches_plain(self, specs, reference):
        assert_identical(ResilientRunner(jobs=1, **FAST).run(specs),
                         reference)

    def test_pooled_supervised_matches_plain(self, specs, reference):
        assert_identical(ResilientRunner(jobs=2, **FAST).run(specs),
                         reference)

    def test_empty_batch(self):
        assert ResilientRunner(jobs=2, **FAST).run([]) == []

    def test_pool_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SupervisedPool(max_retries=-1)
        with pytest.raises(ValueError, match="spec_timeout"):
            SupervisedPool(spec_timeout=0)
        with pytest.raises(ValueError, match="requires a result store"):
            ResilientRunner(resume=True)


class TestRetryPaths:
    def test_injected_error_retries_then_succeeds(self, specs, reference):
        telemetry = Telemetry()
        runner = ResilientRunner(jobs=1, telemetry=telemetry,
                                 chaos=ChaosSchedule.single(1, "raise"),
                                 **FAST)
        assert_identical(runner.run(specs), reference)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.errors"]["value"] == 1.0
        assert snapshot["resilient.retries"]["value"] == 1.0

    def test_worker_crash_respawns_and_retries(self, specs, reference):
        telemetry = Telemetry()
        runner = ResilientRunner(jobs=2, telemetry=telemetry,
                                 chaos=ChaosSchedule.single(2, "kill"),
                                 **FAST)
        assert_identical(runner.run(specs), reference)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.crashes"]["value"] == 1.0
        assert snapshot["resilient.retries"]["value"] == 1.0

    def test_hang_reclaimed_by_spec_timeout(self, specs, reference):
        telemetry = Telemetry()
        runner = ResilientRunner(
            jobs=1, telemetry=telemetry, spec_timeout=0.4,
            chaos=ChaosSchedule.single(0, "hang", hang_seconds=30.0),
            **FAST)
        assert_identical(runner.run(specs), reference)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.timeouts"]["value"] == 1.0

    def test_two_failures_then_success(self, specs, reference):
        telemetry = Telemetry()
        runner = ResilientRunner(
            jobs=1, telemetry=telemetry,
            chaos=ChaosSchedule.single(3, "raise", attempts=2), **FAST)
        assert_identical(runner.run(specs), reference)
        assert telemetry.registry.snapshot()[
            "resilient.retries"]["value"] == 2.0


class TestQuarantine:
    def test_quarantined_after_max_retries(self, specs, reference):
        telemetry = Telemetry()
        runner = ResilientRunner(
            jobs=1, telemetry=telemetry, max_retries=1, backoff_base=0.01,
            chaos=ChaosSchedule.single(1, "raise", attempts=10))
        results = runner.run(specs)
        quarantined = results[1]
        assert isinstance(quarantined, QuarantinedResult)
        assert quarantined.spec == specs[1]
        assert quarantined.attempts == 2  # first try + 1 retry
        assert "ChaosInjectedError" in quarantined.last_error
        assert all(record.kind == "error"
                   for record in quarantined.failures)
        assert "quarantined after 2 attempts" in quarantined.describe()
        # The rest of the batch is unharmed.
        assert_identical([results[0], results[2], results[3]],
                         [reference[0], reference[2], reference[3]])
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.quarantined"]["value"] == 1.0
        # The run manifest records the casualty.
        outcomes = [m["outcome"] for m in telemetry.manifests]
        assert outcomes.count("quarantined") == 1

    def test_quarantine_recorded_in_store(self, tmp_path, specs):
        store_path = str(tmp_path / "store.sqlite")
        runner = ResilientRunner(
            jobs=1, store=store_path, max_retries=0, backoff_base=0.01,
            chaos=ChaosSchedule.single(0, "raise", attempts=10))
        runner.run(specs)
        records = runner.store.quarantined()
        assert len(records) == 1
        assert records[0]["failures"] == 1
        assert "ChaosInjectedError" in records[0]["last_error"]
        assert "ChaosInjectedError" in records[0]["traceback"]
        # Quarantined specs are not served as results on resume.
        assert runner.store.get(specs[0]) is None
        assert len(runner.store) == len(specs) - 1

    def test_resume_reattempts_quarantined_spec(self, tmp_path, specs,
                                                reference):
        store_path = str(tmp_path / "store.sqlite")
        broken = ResilientRunner(
            jobs=1, store=store_path, max_retries=0, backoff_base=0.01,
            chaos=ChaosSchedule.single(0, "raise", attempts=10))
        broken.run(specs)
        healed = ResilientRunner(jobs=1, store=store_path, resume=True,
                                 **FAST)
        assert_identical(healed.run(specs), reference)
        assert healed.store.quarantined() == []  # success cleared the row


class TestStoreIntegration:
    def test_results_committed_as_they_arrive(self, tmp_path, specs,
                                              reference):
        runner = ResilientRunner(jobs=1,
                                 store=str(tmp_path / "s.sqlite"), **FAST)
        runner.run(specs)
        for spec, expected in zip(specs, reference):
            assert runner.store.get(spec).trace.events == \
                expected.trace.events

    def test_resume_serves_hits_bit_identically(self, tmp_path, specs,
                                                reference):
        store_path = str(tmp_path / "s.sqlite")
        ResilientRunner(jobs=1, store=store_path, **FAST).run(specs)
        telemetry = Telemetry()
        resumed = ResilientRunner(jobs=1, store=store_path, resume=True,
                                  cache=False, telemetry=telemetry, **FAST)
        assert_identical(resumed.run(specs), reference)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.store.hits"]["value"] == float(len(specs))
        assert "resilient.store.writes" not in snapshot  # nothing re-ran

    def test_disk_full_degrades_without_losing_the_result(self, tmp_path,
                                                          specs, reference):
        chaos = ChaosSchedule(store_full_writes={1})
        telemetry = Telemetry()
        runner = ResilientRunner(jobs=1, store=str(tmp_path / "s.sqlite"),
                                 chaos=chaos, telemetry=telemetry, **FAST)
        # The caller still gets every result...
        assert_identical(runner.run(specs), reference)
        # ...only the store is short the failed write.
        assert len(runner.store) == len(specs) - 1
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.store.write_errors"]["value"] == 1.0
        assert snapshot["resilient.store.writes"]["value"] == \
            float(len(specs) - 1)

    def test_store_size_gauge_tracks_growth(self, tmp_path, specs):
        telemetry = Telemetry()
        runner = ResilientRunner(jobs=1, store=str(tmp_path / "s.sqlite"),
                                 telemetry=telemetry, **FAST)
        runner.run(specs)
        gauge = telemetry.registry.snapshot()["resilient.store.size"]
        assert gauge["value"] == float(len(specs))

    def test_accepts_open_store_instance(self, tmp_path, specs, reference):
        store = ResultStore(str(tmp_path / "s.sqlite"))
        runner = ResilientRunner(jobs=1, store=store, **FAST)
        assert_identical(runner.run(specs), reference)
        assert runner.store is store


class TestInterruptAndResume:
    def test_chaos_interrupt_raises_resumable(self, tmp_path, specs):
        store_path = str(tmp_path / "s.sqlite")
        runner = ResilientRunner(
            jobs=1, store=store_path,
            chaos=ChaosSchedule.single(2, "interrupt"), **FAST)
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(specs)
        # Specs dispatched before the interrupt were completed and flushed.
        assert excinfo.value.completed == 2
        assert len(ResultStore(store_path)) == 2

    def test_interrupted_then_resumed_matches_serial(self, tmp_path, specs,
                                                     reference):
        store_path = str(tmp_path / "s.sqlite")
        first = ResilientRunner(
            jobs=1, store=store_path,
            chaos=ChaosSchedule.single(1, "interrupt"), **FAST)
        with pytest.raises(SweepInterrupted):
            first.run(specs)
        telemetry = Telemetry()
        resumed = ResilientRunner(jobs=1, store=store_path, resume=True,
                                  telemetry=telemetry, **FAST)
        assert_identical(resumed.run(specs), reference)
        snapshot = telemetry.registry.snapshot()
        assert snapshot["resilient.store.hits"]["value"] == 1.0
        assert snapshot["resilient.store.misses"]["value"] == \
            float(len(specs) - 1)


class TestNoLeakedChildren:
    def test_supervised_pool_reaps_all_workers(self, specs, reference):
        import multiprocessing

        before = len(multiprocessing.active_children())
        assert_identical(ResilientRunner(jobs=2, **FAST).run(specs),
                         reference)
        assert len(multiprocessing.active_children()) <= before

    def test_killed_worker_pid_is_reaped(self, specs):
        # A crash respawns the worker; the dead pid must be waited on (no
        # zombies) and the replacement must be shut down at the end.
        import multiprocessing

        runner = ResilientRunner(jobs=1,
                                 chaos=ChaosSchedule.single(0, "kill"),
                                 **FAST)
        runner.run(specs)
        assert multiprocessing.active_children() == []
