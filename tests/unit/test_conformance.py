"""Unit tests for the cross-algorithm conformance harness."""

import pytest

from repro.adversary.conformance import (
    DEFAULT_FAULT_KINDS,
    ConformanceOutcome,
    agreement_bound_for,
    build_conformance_matrix,
    check_conformance_run,
    run_conformance,
)
from repro.analysis.experiments import ALGORITHM_FACTORIES, default_parameters
from repro.analysis.verification import ClaimCheck
from repro.core.bounds import agreement_bound
from repro.runner import execute


class TestMatrixConstruction:
    def test_default_matrix_covers_every_algorithm_and_fault_model(self):
        cases = build_conformance_matrix(n=7, f=2, rounds=4)
        algorithms = {case.algorithm for case in cases}
        fault_kinds = {case.fault_kind for case in cases}
        assert algorithms == set(ALGORITHM_FACTORIES)
        assert len(algorithms) >= 6          # the acceptance floor
        assert fault_kinds == set(DEFAULT_FAULT_KINDS)
        assert len(cases) == len(algorithms) * len(fault_kinds)
        for case in cases:
            assert case.spec.kind == "algorithm"
            assert case.spec.observers == ("network",)
            assert case.nonfaulty == (case.fault_kind is None)

    def test_none_string_normalizes_to_no_faults(self):
        cases = build_conformance_matrix(n=4, f=1, rounds=3,
                                         algorithms=["welch_lynch"],
                                         fault_kinds=["none", "silent"])
        assert [case.fault_kind for case in cases] == [None, "silent"]

    def test_topology_axis_threads_into_the_specs(self):
        cases = build_conformance_matrix(n=5, f=1, rounds=3,
                                         algorithms=["welch_lynch"],
                                         fault_kinds=[None],
                                         topologies=[None, "ring"])
        assert [case.spec.topology for case in cases] == [None, "ring"]
        assert cases[0].label == "welch_lynch/none/complete"
        assert cases[1].label == "welch_lynch/none/ring"


class TestAgreementBounds:
    def test_every_algorithm_has_a_registered_bound(self):
        params = default_parameters(n=7, f=2)
        for name in ALGORITHM_FACTORIES:
            assert agreement_bound_for(name, params, 10.0) > 0.0

    def test_welch_lynch_bound_is_theorem_16(self):
        params = default_parameters(n=7, f=2)
        assert agreement_bound_for("welch_lynch", params, 10.0) \
            == agreement_bound(params)

    def test_unsynchronized_bound_grows_with_the_window(self):
        params = default_parameters(n=7, f=2)
        early = agreement_bound_for("unsynchronized", params, 1.0)
        late = agreement_bound_for("unsynchronized", params, 100.0)
        assert late > early > params.beta

    def test_unknown_algorithm_is_a_helpful_error(self):
        params = default_parameters(n=4, f=1)
        with pytest.raises(KeyError, match="no conformance bound"):
            agreement_bound_for("quantum_sync", params, 1.0)


class TestCheckConformanceRun:
    def test_clean_cell_passes_every_check(self):
        cases = build_conformance_matrix(n=4, f=1, rounds=3,
                                         algorithms=["welch_lynch"],
                                         fault_kinds=[None])
        outcome = check_conformance_run(execute(cases[0].spec), cases[0])
        claims = {check.claim for check in outcome.checks}
        assert claims == {"axiom_a1_rate_bound", "axiom_a2_fault_threshold",
                          "axiom_a3_delay_envelope", "bound_agreement",
                          "bound_adjustment"}
        assert outcome.axioms_passed and outcome.bounds_passed
        assert outcome.passed

    def test_non_paper_algorithms_skip_the_adjustment_claim(self):
        cases = build_conformance_matrix(n=4, f=1, rounds=3,
                                         algorithms=["unsynchronized"],
                                         fault_kinds=[None])
        outcome = check_conformance_run(execute(cases[0].spec), cases[0])
        claims = {check.claim for check in outcome.checks}
        assert "bound_adjustment" not in claims
        assert outcome.passed

    def test_missing_network_observer_is_an_error(self):
        cases = build_conformance_matrix(n=4, f=1, rounds=3,
                                         algorithms=["welch_lynch"],
                                         fault_kinds=[None])
        bare = execute(cases[0].spec.replace(observers=()))
        with pytest.raises(ValueError, match="network"):
            check_conformance_run(bare, cases[0])


class TestEnforcementSemantics:
    def _outcome(self, fault_kind, bound_passed):
        case = build_conformance_matrix(
            n=4, f=1, rounds=3, algorithms=["welch_lynch"],
            fault_kinds=[fault_kind])[0]
        checks = [
            ClaimCheck(claim="axiom_a1_rate_bound", bound=0.0, measured=0.0,
                       passed=True),
            ClaimCheck(claim="bound_agreement", bound=1.0,
                       measured=0.5 if bound_passed else 2.0,
                       passed=bound_passed),
        ]
        return ConformanceOutcome(case=case, checks=checks)

    def test_bound_violations_fail_nonfaulty_cells(self):
        assert not self._outcome(None, bound_passed=False).passed

    def test_bound_violations_are_recorded_not_enforced_under_faults(self):
        outcome = self._outcome("two_faced", bound_passed=False)
        assert not outcome.bounds_passed
        assert outcome.passed

    def test_outcome_claim_lookup(self):
        outcome = self._outcome(None, bound_passed=True)
        assert outcome.check("bound_agreement").passed
        with pytest.raises(KeyError):
            outcome.check("no_such_claim")


class TestRunConformance:
    def test_small_matrix_reports_clean(self):
        report = run_conformance(n=4, f=1, rounds=3,
                                 algorithms=["welch_lynch",
                                             "unsynchronized"],
                                 fault_kinds=[None, "silent"])
        assert len(report.outcomes) == 4
        assert report.passed
        assert report.violations() == []
        rows = report.rows()
        assert len(rows) == 4
        assert len(report.headers()) == len(rows[0])
        assert {row[6] for row in rows} == {"pass"}

    def test_on_result_streams_outcomes(self):
        seen = []
        run_conformance(n=4, f=1, rounds=3, algorithms=["welch_lynch"],
                        fault_kinds=[None], on_result=seen.append)
        assert len(seen) == 1 and seen[0].passed

    def test_cases_and_matrix_kwargs_are_exclusive(self):
        cases = build_conformance_matrix(n=4, f=1, rounds=3,
                                         algorithms=["welch_lynch"],
                                         fault_kinds=[None])
        with pytest.raises(ValueError, match="not both"):
            run_conformance(cases, n=4)
