"""Unit tests for the Section 10 comparison algorithms."""

import pytest

from repro.analysis import (
    adjustment_statistics,
    measured_agreement,
    run_algorithm_scenario,
)
from repro.baselines import (
    HSSDProcess,
    InteractiveConvergenceProcess,
    MahaneySchneiderProcess,
    MarzulloProcess,
    SignedRoundMessage,
    SrikanthTouegProcess,
    UnsynchronizedProcess,
    free_running_skew_bound,
    hssd_adjustment_estimate,
    hssd_agreement_estimate,
    lm_adjustment_estimate,
    lm_agreement_estimate,
    marzullo_intersection,
    st_adjustment_estimate,
    st_agreement_estimate,
)


class TestEgocentricAverage:
    def test_values_beyond_threshold_replaced_by_own(self, small_params):
        process = InteractiveConvergenceProcess(small_params, threshold=0.01)

        class Ctx:
            n = 4
        offsets = {0: 0.0, 1: 0.005, 2: -0.004, 3: 50.0}
        result = process.combine(Ctx(), offsets)
        assert result == pytest.approx((0.0 + 0.005 - 0.004 + 0.0) / 4)

    def test_default_threshold_positive(self, small_params):
        assert InteractiveConvergenceProcess(small_params).threshold > 0

    def test_paper_estimates_scale_with_n(self, small_params, medium_params):
        assert lm_agreement_estimate(medium_params) > lm_agreement_estimate(small_params)
        assert lm_adjustment_estimate(medium_params) == pytest.approx(
            (2 * medium_params.n + 1) * medium_params.epsilon)


class TestMahaneySchneider:
    def test_lonely_outlier_discarded(self, small_params):
        process = MahaneySchneiderProcess(small_params, closeness=0.01)
        accepted = process._accepted_values([0.0, 0.001, -0.002, 99.0], n=4)
        assert 99.0 not in accepted
        assert len(accepted) == 3

    def test_all_accepted_when_close(self, small_params):
        process = MahaneySchneiderProcess(small_params, closeness=0.01)
        values = [0.0, 0.001, -0.001, 0.002]
        assert sorted(process._accepted_values(values, n=4)) == sorted(values)

    def test_combine_empty_acceptance_returns_zero(self, small_params):
        # Pathological case: nothing is close to n - f others.
        process = MahaneySchneiderProcess(small_params, closeness=1e-9)

        class Ctx:
            n = 4
        assert process.combine(Ctx(), {0: 0.0, 1: 1.0, 2: 2.0, 3: 3.0}) == 0.0


class TestSrikanthToueg:
    def test_estimates(self, medium_params):
        assert st_agreement_estimate(medium_params) == pytest.approx(0.012)
        assert st_adjustment_estimate(medium_params) == pytest.approx(0.036)

    def test_relays_after_f_plus_1(self, medium_params):
        process = SrikanthTouegProcess(medium_params)
        sent = []

        class Ctx:
            process_id = 0
            n = medium_params.n
            process_ids = range(medium_params.n)
            def local_time(self):
                return 0.0
            def broadcast(self, payload):
                sent.append(payload)
            def log(self, *a, **k):
                pass
            def adjust_correction(self, *a, **k):
                pass
            def set_timer(self, *a, **k):
                return True

        from repro.baselines import STRoundMessage
        ctx = Ctx()
        process.on_message(ctx, 1, STRoundMessage(round_index=0))
        process.on_message(ctx, 2, STRoundMessage(round_index=0))
        assert not sent
        process.on_message(ctx, 3, STRoundMessage(round_index=0))  # f+1 = 3 distinct
        assert len(sent) == 1

    def test_duplicate_senders_not_double_counted(self, medium_params):
        process = SrikanthTouegProcess(medium_params)
        heard = process.heard.setdefault(0, set())
        heard.add(1)
        heard.add(1)
        assert len(heard) == 1


class TestHSSD:
    def test_signature_chain_grows(self):
        message = SignedRoundMessage(round_index=3, signers=(1,))
        relayed = message.signed_by(2)
        assert relayed.signers == (1, 2)
        assert relayed.signed_by(2).signers == (1, 2)  # idempotent

    def test_estimates(self, medium_params):
        assert hssd_agreement_estimate(medium_params) == pytest.approx(0.012)
        assert hssd_adjustment_estimate(medium_params) == pytest.approx(3 * 0.012)

    def test_unsigned_message_ignored(self, medium_params):
        process = HSSDProcess(medium_params)

        class Ctx:
            process_id = 0
            def local_time(self):
                return 0.0
        process.on_message(Ctx(), 1, SignedRoundMessage(round_index=0, signers=()))
        assert 0 not in process.accepted


class TestMarzulloIntersection:
    def test_full_overlap(self):
        intervals = [(0.0, 2.0), (1.0, 3.0), (1.5, 2.5)]
        assert marzullo_intersection(intervals, 3) == (1.5, 2.0)

    def test_partial_overlap_uses_best_region(self):
        intervals = [(0.0, 1.0), (0.5, 1.5), (10.0, 11.0)]
        assert marzullo_intersection(intervals, 2) == (0.5, 1.0)

    def test_no_region_returns_none(self):
        assert marzullo_intersection([(0.0, 1.0), (2.0, 3.0)], 2) is None

    def test_required_must_be_positive(self):
        with pytest.raises(ValueError):
            marzullo_intersection([(0.0, 1.0)], 0)

    def test_malformed_interval_rejected(self):
        with pytest.raises(ValueError):
            marzullo_intersection([(2.0, 1.0)], 1)

    def test_touching_intervals_count(self):
        assert marzullo_intersection([(0.0, 1.0), (1.0, 2.0)], 2) == (1.0, 1.0)


class TestUnsynchronized:
    def test_never_adjusts(self, small_params):
        result = run_algorithm_scenario("unsynchronized", small_params, rounds=3,
                                        fault_kind=None, seed=1)
        assert adjustment_statistics(result.trace).count == 0

    def test_free_running_bound_grows_linearly(self, small_params):
        assert free_running_skew_bound(small_params, 100.0) > \
               free_running_skew_bound(small_params, 10.0)


class TestBaselinesSynchronize:
    @pytest.mark.parametrize("algorithm", ["lamport_melliar_smith",
                                           "mahaney_schneider",
                                           "srikanth_toueg",
                                           "marzullo"])
    def test_agreement_beats_free_running_over_long_runs(self, medium_params, algorithm):
        params = medium_params
        rounds = 8
        result = run_algorithm_scenario(algorithm, params, rounds=rounds,
                                        fault_kind="silent", seed=4)
        start = result.tmax0 + 2 * params.round_length
        skew = measured_agreement(result.trace, start, result.end_time, samples=80)
        # Every baseline keeps the clocks at least as close as the spread they
        # started from plus the drift they would have accumulated unmanaged.
        assert skew <= params.beta + 0.005
