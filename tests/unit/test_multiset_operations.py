"""Unit tests for the multiset machinery of the Appendix."""

import math

import pytest

from repro.multiset import (
    Multiset,
    diam,
    drop_largest,
    drop_smallest,
    fault_tolerant_mean,
    fault_tolerant_midpoint,
    lemma21_bounds_hold,
    lemma23_bound_holds,
    lemma24_bound,
    lemma24_holds,
    mid,
    reduce_multiset,
    select_nonfaulty_window,
    x_distance,
)


class TestMultisetBasics:
    def test_values_are_sorted(self):
        ms = Multiset([3.0, 1.0, 2.0])
        assert ms.values == (1.0, 2.0, 3.0)

    def test_duplicates_are_kept(self):
        ms = Multiset([1.0, 1.0, 2.0])
        assert len(ms) == 3
        assert list(ms) == [1.0, 1.0, 2.0]

    def test_contains(self):
        ms = Multiset([1.5, 2.5])
        assert 1.5 in ms
        assert 3.0 not in ms

    def test_equality_and_hash(self):
        assert Multiset([2, 1]) == Multiset([1, 2])
        assert hash(Multiset([2, 1])) == hash(Multiset([1, 2]))
        assert Multiset([1]) != Multiset([1, 1])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            Multiset([1.0, float("nan")])

    def test_min_max_diam(self):
        ms = Multiset([5.0, -1.0, 3.0])
        assert ms.min() == -1.0
        assert ms.max() == 5.0
        assert ms.diam() == 6.0

    def test_empty_operations_raise(self):
        empty = Multiset([])
        for op in (empty.min, empty.max, empty.diam, empty.mid, empty.mean):
            with pytest.raises(ValueError):
                op()

    def test_mid_is_midpoint_of_range(self):
        # mid is NOT the median: it only looks at the extremes.
        assert Multiset([0.0, 0.0, 0.0, 10.0]).mid() == 5.0

    def test_mean(self):
        assert Multiset([1.0, 2.0, 3.0, 6.0]).mean() == 3.0

    def test_shift(self):
        assert Multiset([1.0, 2.0]).shift(2.5).values == (3.5, 4.5)

    def test_repr_round_trips_values(self):
        ms = Multiset([2.0, 1.0])
        assert "1.0" in repr(ms) and "2.0" in repr(ms)


class TestDropAndReduce:
    def test_drop_smallest(self):
        assert Multiset([1, 2, 3]).drop_smallest().values == (2.0, 3.0)

    def test_drop_largest(self):
        assert Multiset([1, 2, 3]).drop_largest().values == (1.0, 2.0)

    def test_drop_zero_is_identity(self):
        ms = Multiset([1, 2, 3])
        assert ms.drop_largest(0) == ms
        assert ms.drop_smallest(0) == ms

    def test_drop_more_than_size_raises(self):
        with pytest.raises(ValueError):
            Multiset([1.0]).drop_smallest(2)

    def test_drop_negative_raises(self):
        with pytest.raises(ValueError):
            Multiset([1.0]).drop_largest(-1)

    def test_reduce_removes_f_each_side(self):
        ms = Multiset([0, 1, 2, 3, 4, 5, 6])
        assert ms.reduce(2).values == (2.0, 3.0, 4.0)

    def test_reduce_zero_is_identity(self):
        ms = Multiset([5, 1, 3])
        assert ms.reduce(0) == ms

    def test_reduce_requires_enough_elements(self):
        with pytest.raises(ValueError):
            Multiset([1, 2, 3, 4]).reduce(2)

    def test_reduce_negative_f_raises(self):
        with pytest.raises(ValueError):
            Multiset([1, 2, 3]).reduce(-1)

    def test_functional_forms_match_methods(self):
        values = [3.0, 7.0, 1.0, 9.0, 5.0]
        assert mid(values) == Multiset(values).mid()
        assert diam(values) == Multiset(values).diam()
        assert reduce_multiset(values, 1) == Multiset(values).reduce(1)
        assert drop_smallest(values) == Multiset(values).drop_smallest()
        assert drop_largest(values) == Multiset(values).drop_largest()


class TestFaultTolerantAverages:
    def test_midpoint_ignores_f_outliers(self):
        values = [10.0, 10.2, 10.1, 10.3, 1000.0, -1000.0, 10.15]
        result = fault_tolerant_midpoint(values, 2)
        assert 10.0 <= result <= 10.3

    def test_mean_ignores_f_outliers(self):
        values = [10.0, 10.2, 10.1, 10.3, 1000.0, -1000.0, 10.15]
        result = fault_tolerant_mean(values, 2)
        assert 10.0 <= result <= 10.3

    def test_midpoint_exact_value(self):
        assert fault_tolerant_midpoint([0, 2, 4, 6, 8], 1) == 4.0

    def test_single_faulty_value_cannot_escape_range(self):
        honest = [5.0, 5.1, 5.2, 5.3]
        for bogus in (-1e9, 1e9, 5.15):
            result = fault_tolerant_midpoint(honest + [bogus], 1)
            assert 5.0 <= result <= 5.3

    def test_select_nonfaulty_window(self):
        low, high = select_nonfaulty_window([0.0, 1.0, 2.0, 3.0, 100.0], 1)
        assert low == 1.0 and high == 3.0


class TestXDistance:
    def test_zero_distance_for_identical(self):
        assert x_distance([1, 2, 3], [1, 2, 3], 0.0) == 0

    def test_within_x_pairs(self):
        assert x_distance([1.0, 2.0], [1.05, 2.05], 0.1) == 0

    def test_unmatched_counted(self):
        assert x_distance([0.0, 100.0], [0.0, 0.1], 1.0) == 1

    def test_requires_u_not_larger(self):
        with pytest.raises(ValueError):
            x_distance([1, 2, 3], [1], 0.5)

    def test_negative_x_rejected(self):
        with pytest.raises(ValueError):
            x_distance([1.0], [1.0], -0.1)

    def test_larger_v_allows_matching(self):
        assert x_distance([5.0], [0.0, 5.0, 10.0], 0.0) == 0

    def test_greedy_matching_agrees_with_exact_on_small_inputs(self):
        from repro.multiset.operations import _x_distance_exact, _x_distance_matching
        u = (0.0, 1.0, 2.0, 3.5)
        v = (0.4, 1.6, 2.1, 3.0, 9.0)
        for x in (0.0, 0.3, 0.5, 1.0, 2.0):
            assert _x_distance_exact(u, v, x) == _x_distance_matching(u, v, x)


class TestAppendixLemmas:
    def test_lemma21_concrete(self):
        w = [10.0, 10.5, 11.0, 10.2, 10.8]          # |W| = n - f = 5
        u = w + [500.0, -500.0]                     # |U| = n = 7, f = 2
        assert lemma21_bounds_hold(u, w, 2, 0.0)

    def test_lemma23_concrete(self):
        w = [10.0, 10.5, 11.0, 10.2, 10.8]
        u = [v + 0.05 for v in w] + [100.0, -100.0]
        v = [v - 0.05 for v in w] + [50.0, -50.0]
        assert lemma23_bound_holds(u, v, 2, 0.05)

    def test_lemma24_bound_formula(self):
        assert lemma24_bound([0.0, 1.0], 0.25) == pytest.approx(0.5 + 0.5)

    def test_lemma24_concrete(self):
        w = [0.0, 0.2, 0.4, 0.6, 0.9]
        u = [v + 0.01 for v in w] + [100.0, -100.0]
        v = [v - 0.01 for v in w] + [3.0, -3.0]
        assert lemma24_holds(u, v, w, 2, 0.01)
