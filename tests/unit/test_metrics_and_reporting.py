"""Unit tests for the analysis metrics, reporting helpers and comparison harness."""

import pytest

from repro.analysis import (
    adjustment_statistics,
    format_paper_vs_measured,
    format_quantity,
    format_series,
    format_table,
    local_time_rate_estimates,
    measured_agreement,
    messages_per_round,
    paper_estimates,
    round_start_spreads,
    run_comparison,
    run_maintenance_scenario,
    sample_grid,
    skew_series,
    steady_state_round_spread,
    validity_report,
)
from repro.core import agreement_bound, validity_parameters


@pytest.fixture(scope="module")
def scenario(medium_params):
    return run_maintenance_scenario(medium_params, rounds=6, fault_kind="two_faced",
                                    seed=1)


class TestSampleGrid:
    def test_endpoints(self):
        grid = sample_grid(1.0, 2.0, 5)
        assert grid[0] == 1.0 and grid[-1] == 2.0 and len(grid) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_grid(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            sample_grid(2.0, 1.0, 5)


class TestAgreementMetrics:
    def test_measured_agreement_below_bound(self, scenario, medium_params):
        start = scenario.tmax0 + medium_params.round_length
        value = measured_agreement(scenario.trace, start, scenario.end_time)
        assert 0 < value <= agreement_bound(medium_params)

    def test_skew_series_shape(self, scenario):
        series = skew_series(scenario.trace, scenario.tmax0, scenario.end_time,
                             samples=20)
        assert len(series) == 20
        assert all(skew >= 0 for _, skew in series)

    def test_adjustment_statistics(self, scenario, medium_params):
        stats = adjustment_statistics(scenario.trace)
        assert stats.count == 6 * len(scenario.trace.nonfaulty_ids)
        assert 0 < stats.mean_abs <= stats.max_abs
        assert set(stats.per_process_max) == set(scenario.trace.nonfaulty_ids)

    def test_round_start_spreads_every_round(self, scenario):
        spreads = round_start_spreads(scenario.trace)
        assert set(spreads) == set(range(6))
        assert all(value >= 0 for value in spreads.values())

    def test_steady_state_round_spread(self, scenario, medium_params):
        steady = steady_state_round_spread(scenario.trace, skip_rounds=2)
        assert 0 < steady <= medium_params.beta

    def test_messages_per_round(self, scenario, medium_params):
        per_round = messages_per_round(scenario.trace, scenario.rounds)
        # Each correct process sends n messages per round; attackers add more.
        assert per_round >= (medium_params.n - medium_params.f) * medium_params.n
        assert messages_per_round(scenario.trace, 0) == 0.0


class TestValidityMetrics:
    def test_validity_report_holds(self, scenario, medium_params):
        report = validity_report(scenario.trace, medium_params,
                                 tmin0=scenario.tmin0, tmax0=scenario.tmax0,
                                 start=scenario.tmax0 + 0.01,
                                 end=scenario.end_time, samples=40)
        assert report.holds
        vp = validity_parameters(medium_params)
        assert vp.alpha1 - 1e-3 <= report.min_rate <= report.max_rate <= vp.alpha2 + 1e-3

    def test_rate_estimates(self, scenario):
        rates = local_time_rate_estimates(scenario.trace, scenario.tmax0 + 0.1,
                                          scenario.end_time)
        assert set(rates) == set(scenario.trace.nonfaulty_ids)
        assert all(0.99 < rate < 1.01 for rate in rates.values())

    def test_rate_estimate_validation(self, scenario):
        with pytest.raises(ValueError):
            local_time_rate_estimates(scenario.trace, 5.0, 5.0)


class TestReporting:
    def test_format_quantity(self):
        assert format_quantity(None) == "-"
        assert format_quantity(True) == "yes"
        assert format_quantity(1.23456789, precision=3) == "1.23"
        assert format_quantity("name") == "name"

    def test_format_table_alignment(self):
        table = format_table(["a", "bbb"], [[1, 2.5], ["x", None]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "-" in lines[1]

    def test_format_paper_vs_measured_ratio(self):
        out = format_paper_vs_measured([("gamma", 2.0, 1.0)])
        assert "0.5" in out

    def test_format_series(self):
        assert format_series("B", [1.0, 0.5]) == "B: [1, 0.5]"


class TestComparison:
    def test_paper_estimates_cover_all_algorithms(self, medium_params):
        estimates = paper_estimates(medium_params)
        assert "welch_lynch" in estimates and "hssd" in estimates
        assert estimates["welch_lynch"]["agreement"] == pytest.approx(
            agreement_bound(medium_params))

    def test_run_comparison_small(self, medium_params):
        rows = run_comparison(medium_params, rounds=4,
                              algorithms=["welch_lynch", "unsynchronized"],
                              seed=1)
        assert [row.algorithm for row in rows] == ["welch_lynch", "unsynchronized"]
        wl, none = rows
        assert wl.messages_per_round > none.messages_per_round
        assert none.max_adjustment == 0.0

    def test_unknown_algorithm_rejected(self, medium_params):
        from repro.analysis import run_algorithm_scenario
        with pytest.raises(KeyError):
            run_algorithm_scenario("bogus", medium_params)
