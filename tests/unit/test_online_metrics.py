"""Unit tests for repro.analysis.online — streaming metrics == batch metrics.

Every observer here claims *bit-identity* with the corresponding batch
computation on the same grid; these tests pin that on representative
scenarios (the hypothesis suite broadens the coverage to random
configurations and both TraceIndex backends).
"""

import pytest

from repro.analysis.experiments import (
    default_parameters,
    run_maintenance_scenario,
    run_partition_heal_scenario,
)
from repro.analysis.metrics import (
    divergence_series,
    measured_agreement,
    sample_grid,
    skew_series,
    validity_report,
)
from repro.analysis.online import (
    OnlineDivergence,
    OnlineSkew,
    OnlineValidity,
    build_observers,
)


def _audit_window(result):
    start = result.tmax0 + result.params.round_length
    return start, result.end_time


def _run_with(params, observers, rounds=5, seed=3, **kwargs):
    return run_maintenance_scenario(params, rounds=rounds, seed=seed,
                                    observers=observers, **kwargs)


class TestOnlineSkew:
    def test_matches_batch_max_skew_and_series(self, medium_params):
        result = _run_with(
            medium_params,
            lambda system, starts, end, params: build_observers(
                ("skew",), system, params, starts, end, keep_series=True))
        start, end = _audit_window(result)
        observer = result.online("skew")
        assert observer.max_skew == measured_agreement(result.trace, start,
                                                       end, samples=200)
        assert observer.series() == skew_series(result.trace, start, end,
                                                samples=200)

    def test_envelope_only_mode_refuses_series(self, medium_params):
        result = _run_with(
            medium_params,
            lambda system, starts, end, params: build_observers(
                ("skew",), system, params, starts, end))
        with pytest.raises(RuntimeError, match="keep_series"):
            result.online("skew").series()

    def test_single_process_skew_is_zero(self):
        from repro.clocks import PerfectClock
        from repro.sim import Process, System

        observer = OnlineSkew([0.5, 1.0])
        system = System([Process()], [PerfectClock()],
                        observers=[observer])
        system.schedule_start(0, 0.0)
        system.run_until(2.0)
        assert observer.max_skew == 0.0 and observer.samples == 2


class TestOnlineValidity:
    def test_matches_batch_validity_report(self, medium_params):
        result = _run_with(
            medium_params,
            lambda system, starts, end, params: build_observers(
                ("validity",), system, params, starts, end))
        start, end = _audit_window(result)
        batch = validity_report(result.trace, result.params, result.tmin0,
                                result.tmax0, start, end, samples=100)
        assert result.online("validity").report() == batch

    def test_report_before_window_raises(self, medium_params):
        observer = OnlineValidity(medium_params, 0.0, 0.0,
                                  sample_grid(1.0, 2.0, 10), 1.0, 2.0)
        with pytest.raises(RuntimeError, match="not reached"):
            observer.report()

    def test_detects_violations_like_batch(self, medium_params):
        # An unsynchronized run eventually leaves the envelope; online and
        # batch must agree on the exact violation count.
        from repro.analysis.experiments import run_algorithm_scenario

        result = run_algorithm_scenario(
            "unsynchronized", medium_params, rounds=5, seed=3,
            observers=lambda system, starts, end, params: build_observers(
                ("validity",), system, params, starts, end))
        start, end = _audit_window(result)
        batch = validity_report(result.trace, result.params, result.tmin0,
                                result.tmax0, start, end, samples=100)
        assert result.online("validity").report() == batch


class TestOnlineDivergence:
    def test_matches_batch_divergence_series(self, medium_params):
        # The default worst-case groups are derived inside the builder, so
        # run once to learn them, then replay the same seed with the
        # observer attached.
        result = run_partition_heal_scenario(medium_params, rounds=8,
                                             partition_round=2, heal_round=5,
                                             seed=4)
        start = result.tmax0 + result.params.round_length
        grid = sample_grid(start, result.end_time, 60)
        # Re-run with the observer now that the groups are known.
        observer = OnlineDivergence(result.groups, grid, keep_series=True)
        replay = run_partition_heal_scenario(medium_params, rounds=8,
                                             partition_round=2, heal_round=5,
                                             seed=4, observers=[observer])
        batch = divergence_series(replay.trace, replay.groups, start,
                                  replay.end_time, samples=60)
        assert observer.series() == batch
        assert observer.max_divergence == max(d for _, d in batch)

    def test_fewer_than_two_groups_is_flat_zero(self, medium_params):
        result = run_maintenance_scenario(
            medium_params, rounds=3, seed=1,
            observers=lambda system, starts, end, params: [
                OnlineDivergence([list(range(params.n))],
                                 sample_grid(starts[0] + 0.1, end, 20),
                                 keep_series=True)])
        observer = result.observers["divergence"]
        assert observer.max_divergence == 0.0
        assert all(value == 0.0 for _, value in observer.series())


class TestBuildObservers:
    def test_unknown_name_rejected(self, medium_params):
        with pytest.raises(ValueError, match="unknown online observer"):
            _run_with(
                medium_params,
                lambda system, starts, end, params: build_observers(
                    ("bogus",), system, params, starts, end))

    def test_network_observer_included(self, medium_params):
        result = _run_with(
            medium_params,
            lambda system, starts, end, params: build_observers(
                ("skew", "network"), system, params, starts, end))
        assert set(result.observers) == {"skew", "network"}
        assert len(result.online("network").records) == \
            result.trace.stats.sent


class TestLongHorizonAcceptance:
    """The ISSUE 4 acceptance shape: >= 50 rounds at n = 100, O(n) memory,
    online metrics equal to batch metrics on the same seed."""

    def test_long_horizon_streams_and_matches_batch(self):
        params = default_parameters(n=100, f=2)
        rounds = 50
        streamed = run_maintenance_scenario(
            params, rounds=rounds, fault_kind="silent", seed=6,
            record_trace=False,
            observers=lambda system, starts, end, p: build_observers(
                ("skew", "validity"), system, p, starts, end))
        # O(n) memory: no trace events, every history bounded.
        assert len(streamed.trace.events) == 0
        assert all(streamed.trace.correction_history(pid).bounded
                   and len(streamed.trace.correction_history(pid).times) <= 8
                   for pid in range(params.n))
        # Same seed, recorded run: the batch metrics must agree exactly.
        recorded = run_maintenance_scenario(params, rounds=rounds,
                                            fault_kind="silent", seed=6)
        start, end = _audit_window(recorded)
        assert streamed.online("skew").max_skew == \
            measured_agreement(recorded.trace, start, end, samples=200)
        assert streamed.online("validity").report() == \
            validity_report(recorded.trace, recorded.params, recorded.tmin0,
                            recorded.tmax0, start, end, samples=100)
