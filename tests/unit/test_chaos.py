"""Unit tests for the deterministic fault-injection schedules."""

import pickle

import pytest

from repro.runner import ChaosFault, ChaosInjectedError, ChaosSchedule
from repro.runner.chaos import CHAOS_ACTIONS


class TestChaosFaultValidation:
    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError, match="unknown chaos action"):
            ChaosFault(0, "explode")

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError, match="index must be >= 0"):
            ChaosFault(-1, "raise")

    def test_rejects_non_positive_attempts(self):
        with pytest.raises(ValueError, match="attempts must be >= 1"):
            ChaosFault(0, "raise", attempts=0)

    def test_all_documented_actions_construct(self):
        for action in CHAOS_ACTIONS:
            assert ChaosFault(0, action).action == action


class TestChaosScheduleLookups:
    def test_fault_for_matches_index_and_attempt_window(self):
        schedule = ChaosSchedule.single(2, "raise", attempts=2)
        assert schedule.fault_for(2, 0) == "raise"
        assert schedule.fault_for(2, 1) == "raise"
        assert schedule.fault_for(2, 2) is None  # window exhausted
        assert schedule.fault_for(1, 0) is None  # different spec

    def test_worker_vs_parent_action_split(self):
        schedule = ChaosSchedule(faults=(ChaosFault(0, "kill"),
                                         ChaosFault(1, "interrupt")))
        assert schedule.worker_action(0, 0) == "kill"
        assert schedule.parent_action(0, 0) is None
        assert schedule.worker_action(1, 0) is None
        assert schedule.parent_action(1, 0) == "interrupt"

    def test_disk_full_keyed_by_write_index(self):
        schedule = ChaosSchedule(store_full_writes={1, 3})
        assert not schedule.disk_full(0)
        assert schedule.disk_full(1)
        assert not schedule.disk_full(2)
        assert schedule.disk_full(3)

    def test_rejects_non_fault_entries(self):
        with pytest.raises(TypeError, match="ChaosFault"):
            ChaosSchedule(faults=(("raise", 0),))

    def test_rejects_non_positive_hang(self):
        with pytest.raises(ValueError, match="hang_seconds"):
            ChaosSchedule(hang_seconds=0.0)


class TestInjection:
    def test_raise_action_raises(self):
        schedule = ChaosSchedule.single(0, "raise")
        with pytest.raises(ChaosInjectedError, match="spec 0 attempt 0"):
            schedule.inject(0, 0)

    def test_no_fault_is_a_no_op(self):
        ChaosSchedule.single(0, "raise").inject(1, 0)
        ChaosSchedule().inject(0, 0)

    def test_retry_after_window_is_clean(self):
        schedule = ChaosSchedule.single(0, "raise", attempts=1)
        with pytest.raises(ChaosInjectedError):
            schedule.inject(0, 0)
        schedule.inject(0, 1)  # second attempt: fault expired


class TestSeededSchedules:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.seeded(7, 50, kill_rate=0.2, raise_rate=0.2,
                                 disk_full_rate=0.1)
        b = ChaosSchedule.seeded(7, 50, kill_rate=0.2, raise_rate=0.2,
                                 disk_full_rate=0.1)
        assert a == b

    def test_different_seed_differs(self):
        a = ChaosSchedule.seeded(1, 100, kill_rate=0.5)
        b = ChaosSchedule.seeded(2, 100, kill_rate=0.5)
        assert a != b

    def test_zero_rates_empty_schedule(self):
        schedule = ChaosSchedule.seeded(0, 100)
        assert schedule.faults == ()
        assert schedule.store_full_writes == frozenset()

    def test_rate_one_faults_every_spec(self):
        schedule = ChaosSchedule.seeded(0, 10, kill_rate=1.0)
        assert len(schedule.faults) == 10
        assert all(f.action == "kill" for f in schedule.faults)

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="kill_rate"):
            ChaosSchedule.seeded(0, 10, kill_rate=1.5)
        with pytest.raises(ValueError, match="hang_rate"):
            ChaosSchedule.seeded(0, 10, hang_rate=-0.1)


class TestScheduleTransport:
    def test_schedules_pickle_roundtrip(self):
        schedule = ChaosSchedule.seeded(3, 20, kill_rate=0.3, raise_rate=0.3,
                                        disk_full_rate=0.2, attempts=2)
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule
        assert clone.fault_for == clone.fault_for  # methods usable

    def test_describe_lists_faults(self):
        schedule = ChaosSchedule(faults=(ChaosFault(0, "kill"),
                                         ChaosFault(2, "raise", attempts=3)),
                                 store_full_writes={1})
        text = schedule.describe()
        assert "kill@0" in text
        assert "raise@2x3" in text
        assert "disk_full@[1]" in text
        assert ChaosSchedule().describe() == "chaos[none]"
