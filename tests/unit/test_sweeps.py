"""Unit tests for repro.analysis.sweeps (the parameter sweep framework)."""

import pytest

from repro.analysis import (
    SweepAxis,
    SweepResult,
    run_sweep,
    sweep_epsilon,
    sweep_fault_count,
    sweep_system_size,
)


class TestSweepAxis:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            SweepAxis("", [1, 2])

    def test_requires_values(self):
        with pytest.raises(ValueError):
            SweepAxis("x", [])


class TestRunSweep:
    def test_single_axis_visits_every_value(self):
        seen = []

        def runner(x):
            seen.append(x)
            return {"double": 2 * x}

        result = run_sweep([SweepAxis("x", [1, 2, 3])], runner)
        assert seen == [1, 2, 3]
        assert result.column("x") == [1, 2, 3]
        assert result.column("double") == [2, 4, 6]

    def test_two_axes_take_cartesian_product(self):
        def runner(x, y):
            return {"product": x * y}

        result = run_sweep([SweepAxis("x", [1, 2]), SweepAxis("y", [10, 20])], runner)
        assert len(result.points) == 4
        assert result.column("product") == [10, 20, 20, 40]

    def test_headers_and_rows_align(self):
        def runner(x):
            return {"y": x + 1, "z": x + 2}

        result = run_sweep([SweepAxis("x", [0, 5])], runner)
        assert result.headers() == ["x", "y", "z"]
        assert result.rows() == [[0, 1, 2], [5, 6, 7]]

    def test_progress_callback_sees_inputs(self):
        observed = []
        run_sweep([SweepAxis("x", [7, 8])],
                  lambda x: {"y": x},
                  progress=lambda inputs: observed.append(inputs["x"]))
        assert observed == [7, 8]

    def test_best_point_minimizes_output(self):
        result = run_sweep([SweepAxis("x", [1, 2, 3])],
                           lambda x: {"loss": (x - 2) ** 2})
        assert result.best("loss").inputs["x"] == 2
        assert result.best("loss", minimize=False).inputs["x"] in (1, 3)

    def test_best_requires_known_output(self):
        result = run_sweep([SweepAxis("x", [1])], lambda x: {"y": x})
        with pytest.raises(ValueError):
            result.best("missing")

    def test_requires_at_least_one_axis(self):
        with pytest.raises(ValueError):
            run_sweep([], lambda: {})


class TestReadyMadeSweeps:
    def test_epsilon_sweep_shape(self):
        result = sweep_epsilon([0.001, 0.002], rounds=5, seed=1)
        gammas = result.column("gamma")
        agreements = result.column("agreement")
        assert len(gammas) == 2
        # The bound grows with epsilon and the measurement respects it.
        assert gammas[1] > gammas[0]
        for gamma, agreement in zip(gammas, agreements):
            assert agreement <= gamma

    def test_system_size_sweep_respects_bound(self):
        result = sweep_system_size([7, 10], rounds=5, seed=2)
        for gamma, agreement in zip(result.column("gamma"),
                                    result.column("agreement")):
            assert agreement <= gamma

    def test_fault_count_sweep_shows_threshold(self):
        result = sweep_fault_count([0, 2, 3], rounds=6, seed=0)
        agreements = result.column("agreement")
        gamma = result.column("gamma")[0]
        # Within the threshold the bound holds; past it the skew blows up.
        assert agreements[0] <= gamma
        assert agreements[1] <= gamma
        assert agreements[2] > agreements[1]
