"""Unit tests for repro.analysis.sweeps (the parameter sweep framework)."""

import pytest

from repro.analysis import (
    SweepAxis,
    SweepResult,
    default_parameters,
    run_spec_sweep,
    run_sweep,
    sweep_epsilon,
    sweep_fault_count,
    sweep_round_length,
    sweep_system_size,
    sweep_topology,
)
from repro.runner import BatchRunner, RunSpec


class TestSweepAxis:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            SweepAxis("", [1, 2])

    def test_requires_values(self):
        with pytest.raises(ValueError):
            SweepAxis("x", [])


class TestRunSweep:
    def test_single_axis_visits_every_value(self):
        seen = []

        def runner(x):
            seen.append(x)
            return {"double": 2 * x}

        result = run_sweep([SweepAxis("x", [1, 2, 3])], runner)
        assert seen == [1, 2, 3]
        assert result.column("x") == [1, 2, 3]
        assert result.column("double") == [2, 4, 6]

    def test_two_axes_take_cartesian_product(self):
        def runner(x, y):
            return {"product": x * y}

        result = run_sweep([SweepAxis("x", [1, 2]), SweepAxis("y", [10, 20])], runner)
        assert len(result.points) == 4
        assert result.column("product") == [10, 20, 20, 40]

    def test_headers_and_rows_align(self):
        def runner(x):
            return {"y": x + 1, "z": x + 2}

        result = run_sweep([SweepAxis("x", [0, 5])], runner)
        assert result.headers() == ["x", "y", "z"]
        assert result.rows() == [[0, 1, 2], [5, 6, 7]]

    def test_progress_callback_sees_inputs(self):
        observed = []
        run_sweep([SweepAxis("x", [7, 8])],
                  lambda x: {"y": x},
                  progress=lambda inputs: observed.append(inputs["x"]))
        assert observed == [7, 8]

    def test_best_point_minimizes_output(self):
        result = run_sweep([SweepAxis("x", [1, 2, 3])],
                           lambda x: {"loss": (x - 2) ** 2})
        assert result.best("loss").inputs["x"] == 2
        assert result.best("loss", minimize=False).inputs["x"] in (1, 3)

    def test_best_requires_known_output(self):
        result = run_sweep([SweepAxis("x", [1])], lambda x: {"y": x})
        with pytest.raises(ValueError):
            result.best("missing")

    def test_requires_at_least_one_axis(self):
        with pytest.raises(ValueError):
            run_sweep([], lambda: {})

    def test_on_result_sees_inputs_and_outputs(self):
        observed = []
        run_sweep([SweepAxis("x", [2, 3])],
                  lambda x: {"y": 10 * x},
                  on_result=lambda inputs, outputs: observed.append(
                      (inputs["x"], outputs["y"])))
        assert observed == [(2, 20), (3, 30)]


class TestRunSpecSweep:
    def _build(self, seed):
        params = default_parameters(n=7, f=2)

        def build(rounds):
            return RunSpec.maintenance(params, rounds=rounds, fault_kind=None,
                                       seed=seed)
        return build

    @staticmethod
    def _measure(result, rounds):
        return {"end_time": result.end_time,
                "sent": float(result.trace.stats.sent)}

    def test_visits_points_in_order_with_callbacks(self):
        progressed, measured = [], []
        result = run_spec_sweep(
            [SweepAxis("rounds", [2, 3])], self._build(seed=1), self._measure,
            progress=lambda inputs: progressed.append(inputs["rounds"]),
            on_result=lambda inputs, outputs: measured.append(
                (inputs["rounds"], outputs["sent"])))
        assert progressed == [2, 3]
        assert [rounds for rounds, _ in measured] == [2, 3]
        assert result.column("sent") == [sent for _, sent in measured]

    def test_parallel_equals_serial(self):
        axes = [SweepAxis("rounds", [2, 3, 4])]
        serial = run_spec_sweep(axes, self._build(seed=2), self._measure)
        parallel = run_spec_sweep(axes, self._build(seed=2), self._measure,
                                  jobs=2)
        assert serial.rows() == parallel.rows()

    def test_replication_adds_ci_columns(self):
        result = run_spec_sweep([SweepAxis("rounds", [3])],
                                self._build(seed=0), self._measure,
                                seeds=[0, 1, 2])
        assert result.headers() == ["rounds", "end_time", "sent",
                                    "end_time_ci95", "sent_ci95"]
        assert result.points[0].outputs["sent_ci95"] >= 0.0

    def test_shared_runner_caches_across_sweeps(self):
        runner = BatchRunner()
        axes = [SweepAxis("rounds", [2, 3])]
        run_spec_sweep(axes, self._build(seed=3), self._measure, runner=runner)
        assert runner.cache_size == 2
        run_spec_sweep(axes, self._build(seed=3), self._measure, runner=runner)
        assert runner.cache_size == 2  # second sweep was pure cache hits

    def test_rejects_empty_seeds(self):
        with pytest.raises(ValueError):
            run_spec_sweep([SweepAxis("rounds", [2])], self._build(seed=0),
                           self._measure, seeds=[])

    def test_rejects_duplicate_seeds(self):
        with pytest.raises(ValueError, match="distinct"):
            run_spec_sweep([SweepAxis("rounds", [2])], self._build(seed=0),
                           self._measure, seeds=[0, 0, 1])


class TestReadyMadeSweeps:
    def test_epsilon_sweep_shape(self):
        result = sweep_epsilon([0.001, 0.002], rounds=5, seed=1)
        gammas = result.column("gamma")
        agreements = result.column("agreement")
        assert len(gammas) == 2
        # The bound grows with epsilon and the measurement respects it.
        assert gammas[1] > gammas[0]
        for gamma, agreement in zip(gammas, agreements):
            assert agreement <= gamma

    def test_system_size_sweep_respects_bound(self):
        result = sweep_system_size([7, 10], rounds=5, seed=2)
        for gamma, agreement in zip(result.column("gamma"),
                                    result.column("agreement")):
            assert agreement <= gamma

    def test_fault_count_sweep_shows_threshold(self):
        result = sweep_fault_count([0, 2, 3], rounds=6, seed=0)
        agreements = result.column("agreement")
        gamma = result.column("gamma")[0]
        # Within the threshold the bound holds; past it the skew blows up.
        assert agreements[0] <= gamma
        assert agreements[1] <= gamma
        assert agreements[2] > agreements[1]

    @pytest.mark.parametrize("sweep,values", [
        (sweep_epsilon, [0.002]),
        (sweep_round_length, [0.5]),
        (sweep_system_size, [7]),
        (sweep_fault_count, [1]),
        (sweep_topology, ["ring"]),
    ])
    def test_every_helper_exposes_seed_seeds_and_jobs(self, sweep, values):
        """The uniform replication interface across all five ready-made sweeps."""
        single = sweep(values, rounds=3, seed=7)
        assert len(single.points) == 1
        replicated = sweep(values, rounds=3, seed=7, seeds=[0, 1], jobs=2)
        outputs = replicated.points[0].outputs
        ci_names = [name for name in outputs if name.endswith("_ci95")]
        assert ci_names, "replication must add *_ci95 columns"
        for name in ci_names:
            assert outputs[name] >= 0.0

    def test_replicated_sweep_mean_brackets_single_seeds(self):
        singles = [sweep_epsilon([0.002], rounds=4, seed=seed)
                   .column("agreement")[0] for seed in (0, 1)]
        replicated = sweep_epsilon([0.002], rounds=4, seeds=[0, 1])
        mean = replicated.column("agreement")[0]
        assert min(singles) <= mean <= max(singles)
        assert mean == pytest.approx(sum(singles) / 2)
