"""Unit tests for the message delay models (assumption A3)."""

import random

import pytest

from repro.sim import (
    AdversarialDelayModel,
    ContentionDelayModel,
    FixedDelayModel,
    PerLinkDelayModel,
    TruncatedGaussianDelayModel,
    UniformDelayModel,
)


RNG = random.Random(0)


class TestValidation:
    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedDelayModel(0.0)

    def test_epsilon_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            UniformDelayModel(0.01, -0.001)

    def test_epsilon_must_be_less_than_delta(self):
        # Assumption A3 requires delta > epsilon.
        with pytest.raises(ValueError):
            UniformDelayModel(0.01, 0.01)


class TestFixedAndUniform:
    def test_fixed_delay_is_delta(self):
        model = FixedDelayModel(0.02)
        assert model.delay(0, 1, 0.0, RNG) == 0.02
        assert model.envelope() == (0.02, 0.02)

    def test_uniform_within_envelope(self):
        model = UniformDelayModel(0.01, 0.002)
        rng = random.Random(7)
        for _ in range(500):
            d = model.delay(0, 1, 0.0, rng)
            assert 0.008 <= d <= 0.012

    def test_uniform_uses_full_envelope(self):
        model = UniformDelayModel(0.01, 0.002)
        rng = random.Random(3)
        samples = [model.delay(0, 1, 0.0, rng) for _ in range(2000)]
        assert min(samples) < 0.0085 and max(samples) > 0.0115


class TestGaussian:
    def test_within_envelope(self):
        model = TruncatedGaussianDelayModel(0.01, 0.002)
        rng = random.Random(9)
        for _ in range(500):
            d = model.delay(0, 1, 0.0, rng)
            assert 0.008 <= d <= 0.012

    def test_concentrated_near_delta(self):
        model = TruncatedGaussianDelayModel(0.01, 0.002, sigma=1e-4)
        rng = random.Random(2)
        samples = [model.delay(0, 1, 0.0, rng) for _ in range(500)]
        assert abs(sum(samples) / len(samples) - 0.01) < 5e-4


class TestPerLink:
    def test_specified_links(self):
        model = PerLinkDelayModel(0.01, 0.002, {(0, 1): 0.011, (1, 0): 0.009})
        assert model.delay(0, 1, 0.0, RNG) == 0.011
        assert model.delay(1, 0, 0.0, RNG) == 0.009

    def test_default_links_use_delta(self):
        model = PerLinkDelayModel(0.01, 0.002, {})
        assert model.delay(3, 4, 0.0, RNG) == 0.01

    def test_out_of_envelope_link_rejected(self):
        with pytest.raises(ValueError):
            PerLinkDelayModel(0.01, 0.002, {(0, 1): 0.05})


class TestAdversarial:
    def test_fast_and_slow_senders(self):
        model = AdversarialDelayModel(0.01, 0.002, fast_senders=[0], slow_senders=[1])
        assert model.delay(0, 5, 0.0, RNG) == pytest.approx(0.008)
        assert model.delay(1, 5, 0.0, RNG) == pytest.approx(0.012)
        assert model.delay(2, 5, 0.0, RNG) == pytest.approx(0.01)

    def test_overlapping_sets_rejected(self):
        with pytest.raises(ValueError):
            AdversarialDelayModel(0.01, 0.002, fast_senders=[0], slow_senders=[0])


class TestContention:
    def test_isolated_sends_unaffected(self):
        model = ContentionDelayModel(0.01, 0.002, window=0.001, threshold=2,
                                     drop_probability=1.0)
        rng = random.Random(4)
        delays = [model.delay(i, 0, i * 1.0, rng) for i in range(10)]
        assert all(d is not None for d in delays)

    def test_clustered_sends_can_be_dropped(self):
        model = ContentionDelayModel(0.01, 0.002, window=1.0, threshold=1,
                                     drop_probability=1.0)
        rng = random.Random(4)
        first = model.delay(0, 0, 0.0, rng)
        second = model.delay(1, 0, 0.0001, rng)
        assert first is not None
        assert second is None
        assert model.dropped == 1

    def test_delays_never_exceed_envelope(self):
        model = ContentionDelayModel(0.01, 0.002, window=1.0, threshold=1,
                                     penalty=0.01, drop_probability=0.0)
        rng = random.Random(5)
        for index in range(50):
            d = model.delay(index, 0, 0.0001 * index, rng)
            assert d is None or d <= 0.012 + 1e-12
