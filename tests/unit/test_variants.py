"""Unit tests for the k-exchange and staggered-broadcast variants."""

import pytest

from repro.analysis import round_start_spreads, run_maintenance_scenario
from repro.core import (
    MultiExchangeProcess,
    StaggeredWelchLynchProcess,
    choose_stagger_interval,
    effective_beta,
)
from repro.sim import ContentionDelayModel


class TestMultiExchange:
    def test_requires_positive_k(self, small_params):
        with pytest.raises(ValueError):
            MultiExchangeProcess(small_params, exchanges_per_round=0)

    def test_sub_round_spacing_exceeds_window(self, small_params):
        process = MultiExchangeProcess(small_params, exchanges_per_round=2)
        assert process.sub_round_spacing() > small_params.collection_window()

    def test_minimum_round_length_grows_with_k(self, small_params):
        p2 = MultiExchangeProcess(small_params, exchanges_per_round=2)
        p4 = MultiExchangeProcess(small_params, exchanges_per_round=4)
        assert p4.minimum_round_length() > p2.minimum_round_length()

    def test_runs_and_converges(self, small_params):
        from repro.core import agreement_bound
        params = small_params.with_round_length(
            MultiExchangeProcess(small_params, 2).minimum_round_length() * 1.2)
        result = run_maintenance_scenario(params, rounds=4, fault_kind=None,
                                          exchanges_per_round=2, seed=1)
        assert result.trace.events_named("update")  # rounds actually happened
        # After the run the nonfaulty clocks are at least as close as the
        # basic algorithm guarantees.
        assert result.trace.skew(result.end_time - params.delta) < agreement_bound(params)

    def test_performs_k_updates_per_round(self, small_params):
        params = small_params.with_round_length(
            MultiExchangeProcess(small_params, 2).minimum_round_length() * 1.2)
        result = run_maintenance_scenario(params, rounds=3, fault_kind=None,
                                          exchanges_per_round=2, seed=0)
        for pid in result.trace.nonfaulty_ids:
            updates = result.trace.events_named("update", process_id=pid)
            assert len(updates) == 3 * 2

    def test_label(self, small_params):
        assert "k=3" in MultiExchangeProcess(small_params, 3).label()


class TestStaggered:
    def test_requires_positive_sigma(self, small_params):
        with pytest.raises(ValueError):
            StaggeredWelchLynchProcess(small_params, stagger_interval=0.0)

    def test_effective_beta(self, small_params):
        sigma = 0.004
        assert effective_beta(small_params, sigma) == pytest.approx(
            small_params.beta + (small_params.n - 1) * sigma)

    def test_choose_stagger_interval_exceeds_contention_window(self, small_params):
        contention = ContentionDelayModel(small_params.delta, small_params.epsilon,
                                          window=0.003)
        sigma = choose_stagger_interval(small_params, contention)
        assert sigma > contention.window

    def test_label(self, small_params):
        process = StaggeredWelchLynchProcess(small_params, stagger_interval=0.01)
        assert "Staggered" in process.label()

    def test_staggering_reduces_contention_drops(self, small_params):
        params = small_params
        def run(stagger):
            contention = ContentionDelayModel(params.delta, params.epsilon,
                                              window=0.004, threshold=2,
                                              drop_probability=0.6)
            result = run_maintenance_scenario(params, rounds=4, fault_kind=None,
                                              delay=contention, seed=3,
                                              stagger_interval=stagger)
            return result.trace.stats.dropped
        sigma = 2 * (0.004 + params.beta)
        assert run(sigma) < run(0.0)
