"""Unit tests for repro.analysis.plotting (ASCII plots)."""

import math

import pytest

from repro.analysis import histogram, line_plot, sparkline
from repro.analysis.plotting import scale_to_rows


class TestSparkline:
    def test_length_matches_input(self):
        values = [1.0, 2.0, 3.0, 2.0, 1.0]
        assert len(sparkline(values)) == len(values)

    def test_extremes_use_extreme_glyphs(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series_is_flat(self):
        line = sparkline([5.0, 5.0, 5.0])
        assert len(set(line)) == 1

    def test_empty_series_gives_empty_string(self):
        assert sparkline([]) == ""

    def test_non_finite_values_render_as_spaces(self):
        line = sparkline([1.0, math.nan, 2.0])
        assert line[1] == " "


class TestScaleToRows:
    def test_rows_within_height(self):
        rows = scale_to_rows([0.0, 0.5, 1.0], height=5)
        assert rows == [0, 2, 4]

    def test_constant_series_maps_to_middle(self):
        rows = scale_to_rows([2.0, 2.0], height=7)
        assert rows == [3, 3]

    def test_explicit_range_clamps(self):
        rows = scale_to_rows([-10.0, 0.5, 10.0], height=3, low=0.0, high=1.0)
        assert rows == [0, 1, 2]

    def test_height_must_be_positive(self):
        with pytest.raises(ValueError):
            scale_to_rows([1.0], height=0)


class TestLinePlot:
    def test_contains_legend_and_axis_labels(self):
        text = line_plot({"skew": [0.0, 1.0, 2.0, 3.0]}, width=20, height=5,
                         title="skew over time")
        assert "skew over time" in text
        assert "* skew" in text
        assert "3" in text  # the max label
        assert "0" in text  # the min label

    def test_two_series_get_distinct_markers(self):
        text = line_plot({"a": [0.0, 1.0], "b": [1.0, 0.0]}, width=10, height=4)
        assert "* a" in text
        assert "o b" in text

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": [1.0, 2.0], "b": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_plot({"a": []})
        with pytest.raises(ValueError):
            line_plot({})


class TestHistogram:
    def test_counts_sum_to_sample_size(self):
        text = histogram([0.0, 0.1, 0.2, 0.9, 1.0], bins=2, width=10)
        counts = [int(line.split(")")[1].split()[0]) for line in text.splitlines()]
        assert sum(counts) == 5

    def test_single_value_sample(self):
        text = histogram([1.0, 1.0, 1.0], bins=3)
        assert "3" in text

    def test_title_is_included(self):
        assert histogram([1.0, 2.0], bins=2, title="delays").startswith("delays")

    def test_rejects_empty_and_bad_bins(self):
        with pytest.raises(ValueError):
            histogram([], bins=2)
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)
