"""Tests for the real-socket backend: peers, spec routing, loopback runs.

The loopback cluster opens real TCP sockets on 127.0.0.1 and runs real
wall-clock rounds, so the integration tests here are rounds-capped (a
3-round run is ~1.5s of wall time) and assert the *contract* — skew within
the bound derived from the measured envelope, audits clean — rather than
bit-exact values, which real schedulers do not replay.
"""

import pytest

from repro.core.config import SyncParameters
from repro.net import (
    NetPeer,
    PeerConfig,
    ServeConfig,
    make_net_clock,
    run_loopback_cluster,
)
from repro.net.cluster import (
    _params_frame,
    _params_from_frame,
    _plan_rounds,
    execute_net_spec,
)
from repro.runner import RunSpec, execute


class TestNetSpec:
    def test_net_constructor_builds_valid_spec(self):
        spec = RunSpec.net(n=4, duration=2.0, seed=3)
        assert spec.kind == "net"
        assert spec.params.n == 4 and spec.params.f == 1
        assert spec.fault_kind is None
        assert spec.options_dict()["duration"] == 2.0

    def test_net_spec_rejects_topology(self):
        spec = RunSpec.net(n=4)
        with pytest.raises(ValueError, match="TCP mesh"):
            spec.replace(topology="ring")

    def test_net_spec_rejects_fault_kind(self):
        spec = RunSpec.net(n=4)
        with pytest.raises(ValueError, match="injects no process faults"):
            spec.replace(fault_kind="two_faced")

    def test_net_spec_rejects_streaming_knobs(self):
        spec = RunSpec.net(n=4)
        with pytest.raises(ValueError, match="streaming pipeline"):
            spec.replace(observers=("skew",))

    def test_net_spec_rejects_unknown_options(self):
        spec = RunSpec.net(n=4)
        with pytest.raises(ValueError, match="not supported by kind"):
            spec.replace(options=(("initial_spread", 1.0),))

    def test_net_spec_hashes_and_replaces(self):
        spec = RunSpec.net(n=4, duration=2.0)
        assert hash(spec) == hash(RunSpec.net(n=4, duration=2.0))
        assert spec.with_seed(5).seed == 5


class TestPlanRounds:
    def test_explicit_cap_wins(self):
        assert _plan_rounds(0.3, duration=60.0, rounds_cap=4) == 4

    def test_duration_fills_rounds_with_floor(self):
        assert _plan_rounds(0.3, duration=3.0, rounds_cap=None) == 10
        # floor of 3 so the audit window always contains samples
        assert _plan_rounds(0.3, duration=0.1, rounds_cap=None) == 3

    def test_needs_duration_or_cap(self):
        with pytest.raises(ValueError, match="duration"):
            _plan_rounds(0.3, duration=None, rounds_cap=None)


class TestNetClock:
    def params(self):
        return SyncParameters.derive(n=4, f=1, rho=1e-5, delta=1e-2,
                                     epsilon=5e-3)

    def test_deterministic_per_seed_and_pid(self):
        params = self.params()
        first = make_net_clock(7, 2, params, reference_time=3.0)
        second = make_net_clock(7, 2, params, reference_time=3.0)
        assert (first.offset, first.rate) == (second.offset, second.rate)
        other = make_net_clock(7, 3, params, reference_time=3.0)
        assert (first.offset, first.rate) != (other.offset, other.rate)

    def test_reads_within_beta_over_4_at_reference(self):
        params = self.params()
        for pid in range(8):
            clock = make_net_clock(11, pid, params, reference_time=2.0)
            offset = clock.read(2.0) - params.initial_round_time
            assert abs(offset) <= params.beta / 4.0 + 1e-12

    def test_rates_within_rho_band(self):
        from repro.clocks.base import rho_rate_bounds
        params = self.params()
        lo, hi = rho_rate_bounds(params.rho)
        for pid in range(8):
            clock = make_net_clock(1, pid, params)
            assert lo <= clock.rate <= hi


class TestServeProtocolFrames:
    def test_params_frame_roundtrips(self):
        params = SyncParameters.derive(n=4, f=1, rho=1e-5, delta=1e-2,
                                       epsilon=5e-3)
        frame = _params_frame(params, rounds=6, go_in=0.5)
        rebuilt = _params_from_frame(frame)
        assert rebuilt.n == params.n and rebuilt.f == params.f
        assert rebuilt.delta == params.delta
        assert rebuilt.epsilon == params.epsilon
        assert rebuilt.beta == params.beta
        assert rebuilt.round_length == params.round_length
        assert rebuilt.initial_round_time == 0.0
        assert frame["rounds"] == 6 and frame["go_in"] == 0.5

    def test_serve_config_validation(self):
        hosts = [("127.0.0.1", 9001), ("127.0.0.1", 9002)]
        with pytest.raises(ValueError, match="outside"):
            from repro.net import serve_peer
            serve_peer(ServeConfig(pid=2, hosts=hosts))
        with pytest.raises(ValueError, match="at least 2"):
            from repro.net import serve_peer
            serve_peer(ServeConfig(pid=0, hosts=hosts[:1]))


class TestLoopbackCluster:
    def test_cluster_validates_inputs(self):
        with pytest.raises(ValueError, match="3f\\+1"):
            run_loopback_cluster(n=3, f=1, rounds=2)
        with pytest.raises(ValueError, match="positive"):
            run_loopback_cluster(n=0, rounds=2)

    def test_deterministic_loopback_run_meets_measured_bound(self):
        # The PR's acceptance shape at test scale: n=3 peers over real
        # loopback TCP, fixed seed, rounds-capped.  The online max skew must
        # stay within the Theorem 16 bound computed from the *measured*
        # envelope, and the A1-A3 audits must pass on measured evidence.
        result = run_loopback_cluster(n=3, seed=42, rounds=3)
        assert result.mode == "asyncio"
        assert result.rounds == 3
        assert result.envelope.samples >= 3 * 3  # >= one ping volley/pair
        assert result.params.epsilon < result.params.delta  # A3 shape
        assert result.max_skew <= result.skew_bound
        assert result.audits["a1_rho_bounded"]
        assert result.audits["a2_quorum"]
        assert result.audits["a3_envelope"]
        assert result.validity["holds"]
        assert result.passed
        assert result.messages_sent > 0 and result.msgs_per_second > 0
        data = result.as_dict()
        assert data["passed"] and data["agreement_holds"]
        assert data["delta_measured"] == result.params.delta

    def test_execute_routes_net_spec_to_cluster(self):
        spec = RunSpec.net(n=3, rounds=3, seed=42)
        result = execute(spec)
        assert result.spec == spec
        assert result.n == 3 and result.f == 0
        assert result.rounds == 3
        assert result.passed

    def test_execute_net_spec_honors_duration_option(self):
        spec = RunSpec.net(n=3, duration=1.0, seed=1)
        result = execute_net_spec(spec)
        # duration/P with a floor of 3; P is measured, so just the floor
        assert result.rounds >= 3
        assert result.passed


class TestPeerUnits:
    def test_peer_lifecycle_inside_event_loop(self):
        import asyncio

        async def scenario():
            # NetPeer builds an asyncio.Queue; constructing inside a
            # running loop is the supported pattern on 3.10+.
            peer = NetPeer(PeerConfig(pid=0, n=1))
            assert peer.frames_sent == 0
            await peer.close()

        asyncio.run(scenario())
