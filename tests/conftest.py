"""Shared fixtures for the test suite.

The simulated "hardware" constants used here are deliberately coarse
(δ = 10 ms, ε = 2 ms, ρ = 10⁻⁴) so that drift and delay effects are visible in
runs of a handful of rounds, which keeps each test well under a second.
"""

import pytest

from repro.core import SyncParameters


@pytest.fixture(scope="session")
def small_params() -> SyncParameters:
    """The smallest interesting configuration: n = 4, f = 1."""
    return SyncParameters.derive(n=4, f=1, rho=1e-4, delta=0.01, epsilon=0.002)


@pytest.fixture(scope="session")
def medium_params() -> SyncParameters:
    """The configuration used by most benchmarks: n = 7, f = 2."""
    return SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)


@pytest.fixture(scope="session")
def driftfree_params() -> SyncParameters:
    """No drift, no delay uncertainty: the algorithm should be near-exact."""
    return SyncParameters.derive(n=4, f=1, rho=0.0, delta=0.01, epsilon=0.0,
                                 round_length=0.5)
