"""Packaging for the Welch-Lynch clock-synchronization reproduction.

The version is single-sourced from ``src/repro/__init__.py`` (the
``__version__`` attribute), which the CLI's ``--version`` flag also reports.
"""

import os
import re

from setuptools import find_packages, setup

_HERE = os.path.abspath(os.path.dirname(__file__))


def read_version() -> str:
    """Extract ``__version__`` from the package without importing it."""
    init_path = os.path.join(_HERE, "src", "repro", "__init__.py")
    with open(init_path, encoding="utf-8") as handle:
        source = handle.read()
    match = re.search(r'^__version__\s*=\s*["\']([^"\']+)["\']', source, re.M)
    if not match:
        raise RuntimeError(f"__version__ not found in {init_path}")
    return match.group(1)


setup(
    name="repro-clocksync",
    version=read_version(),
    description="Reproduction of Welch & Lynch fault-tolerant clock "
                "synchronization (PODC 1984), with fault injection, network "
                "topologies and a theorem-auditing harness",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # Matches the CI test matrix (.github/workflows/ci.yml): only versions
    # the suite actually runs on are claimed as supported.
    python_requires=">=3.10",
    entry_points={
        "console_scripts": [
            "repro-clocksync = repro.cli:main",
        ],
    },
)
