"""Setuptools shim; all metadata lives in pyproject.toml / setup.cfg."""
from setuptools import setup

setup()
