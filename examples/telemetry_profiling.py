"""Telemetry profiling: metrics, phase spans and run manifests for one run.

Observability for simulation campaigns: where does the wall-clock go, how
many events were dispatched, what did the network do — without adding a
single RNG draw to the run (instrumented results are bit-identical to plain
ones).  This example:

1. streams an n = 100 maintenance run with a full telemetry bundle attached:
   the metric registry counts events/messages/timers, spans time each phase,
   and one manifest line records the run;
2. prints the registry and the span tree, and writes the spans as Chrome
   trace-event JSON — load it in chrome://tracing or https://ui.perfetto.dev;
3. shows the per-run metric delta a manifest embeds, and that disabling
   telemetry (the default) reproduces the identical simulation.

Run with:  PYTHONPATH=src python examples/telemetry_profiling.py
"""

import json
import os
import tempfile

from repro.analysis import default_parameters
from repro.runner import RunSpec, execute
from repro.telemetry import Telemetry, read_manifests

params = default_parameters(n=100, f=2)
spec = RunSpec.maintenance(params, rounds=10, fault_kind="silent", seed=11,
                           record_trace=False,
                           observers=("skew", "validity", "network"))

# -- 1. one instrumented streaming run ----------------------------------------
manifest_path = os.path.join(tempfile.mkdtemp(), "manifest.jsonl")
telemetry = Telemetry(manifest_path=manifest_path)
result = execute(spec, telemetry=telemetry)

registry = telemetry.registry
print(f"instrumented run: n={params.n}, "
      f"{registry.value('sim.events_dispatched'):.0f} events dispatched, "
      f"{registry.value('sim.messages_sent'):.0f} messages sent")
print()
print(registry.format())

# -- 2. spans: terminal tree + Chrome trace ------------------------------------
print()
print(telemetry.tracer.tree())
trace_path = os.path.join(os.path.dirname(manifest_path), "trace.json")
telemetry.tracer.write_chrome_trace(trace_path)
events = json.load(open(trace_path))["traceEvents"]
print(f"\nwrote {len(events)} span events to {trace_path} "
      f"(open in chrome://tracing or ui.perfetto.dev)")

# -- 3. the manifest line and bit-identity -------------------------------------
(record,) = read_manifests(manifest_path)
print(f"\nmanifest: spec {record['spec']} hash {record['spec_hash']} "
      f"outcome {record['outcome']} wall {record['wall_seconds']}s")
print(f"manifest network stats: {record['network']}")
assert record["metrics"]["sim.events_dispatched"]["value"] == \
    registry.value("sim.events_dispatched")

plain = execute(spec)  # telemetry=None, the default: zero instrumentation
same = (plain.online("skew").max_skew == result.online("skew").max_skew
        and plain.trace.stats.sent == result.trace.stats.sent)
print(f"\nplain run bit-identical to instrumented run: {same}")
assert same
