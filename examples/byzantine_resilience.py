#!/usr/bin/env python3
"""Byzantine resilience: what the fault-tolerant averaging buys you.

The paper's introduction motivates the algorithm with arbitrary (Byzantine)
process faults: a faulty process may report different clock values to
different recipients, report wildly wrong values, stay silent, or try to drag
everyone early or late.  This example

* runs the maintenance algorithm against each attacker family the library
  ships and shows that agreement stays within the Theorem 16 bound;
* shows what happens *without* the fault tolerance: replacing the
  ``mid(reduce(·))`` averaging with a plain mean lets two attackers destroy
  synchronization;
* demonstrates the n ≥ 3f + 1 threshold (assumption A2): the same attack that
  is harmless with 2 attackers breaks the system with 3.

Run with::

    python examples/byzantine_resilience.py
"""

from __future__ import annotations

from repro import default_parameters, measured_agreement, run_maintenance_scenario
from repro.analysis import format_table
from repro.clocks import make_clock_ensemble
from repro.core import PlainMean, SyncParameters, WelchLynchProcess, agreement_bound
from repro.faults import TwoFacedClockAttacker
from repro.sim import System, UniformDelayModel

ROUNDS = 12


def agreement_for(params, **kwargs) -> float:
    result = run_maintenance_scenario(params, rounds=ROUNDS, **kwargs)
    settle = result.tmax0 + params.round_length
    return measured_agreement(result.trace, settle, result.end_time, samples=200)


def attacker_families(params) -> None:
    """Every attacker family stays inside the Theorem 16 envelope."""
    gamma = agreement_bound(params)
    rows = []
    for fault_kind in ("silent", "omission", "two_faced", "skew_early",
                       "skew_late", "random_noise", "crash"):
        skew = agreement_for(params, fault_kind=fault_kind, seed=1)
        rows.append((fault_kind, skew, gamma, "yes" if skew <= gamma else "NO"))
    print("Agreement under each attacker family (f = 2 attackers of 7)")
    print(format_table(["attacker", "measured skew", "gamma (Thm 16)", "within bound"],
                       rows))
    print()


def fault_tolerant_vs_plain_averaging(params) -> None:
    """Dropping the reduce step lets two-faced attackers wreck the clocks."""
    gamma = agreement_bound(params)
    tolerant = agreement_for(params, fault_kind="two_faced", seed=2)
    plain = agreement_for(params, fault_kind="two_faced", seed=2,
                          averaging=PlainMean())
    print("Fault-tolerant averaging vs a plain mean (same two-faced attack)")
    print(format_table(["averaging", "measured skew", "gamma"],
                       [("mid(reduce(.))  [the paper]", tolerant, gamma),
                        ("plain mean      [no fault tolerance]", plain, gamma)]))
    print(f"  -> the plain mean is {plain / max(tolerant, 1e-12):.1f}x worse; "
          "the reduce step is what screens the attackers out.")
    print()


def threshold_demo() -> None:
    """n >= 3f + 1 is tight: 3 attackers out of 7 exceed what f = 2 tolerates."""
    params = SyncParameters.derive(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    gamma = agreement_bound(params)
    rows = []
    for attackers in (2, 3):
        correct = [WelchLynchProcess(params, max_rounds=ROUNDS)
                   for _ in range(params.n - attackers)]
        byz = [TwoFacedClockAttacker(params, max_rounds=ROUNDS + 2)
               for _ in range(attackers)]
        clocks = make_clock_ensemble(params.n, rho=params.rho, beta=params.beta,
                                     seed=3)
        system = System(correct + byz, clocks,
                        delay_model=UniformDelayModel(params.delta, params.epsilon),
                        seed=3)
        starts = system.schedule_all_starts_at_logical(params.T0)
        end = params.T0 + ROUNDS * params.round_length + 1.0
        trace = system.run_until(end)
        settle = min(starts.values()) + params.round_length
        grid = [settle + i * (end - settle) / 150 for i in range(151)]
        rows.append((f"{attackers} attackers (f = 2 configured)",
                     trace.max_skew(grid), gamma))
    print("The n >= 3f + 1 threshold (assumption A2 / [DHS] impossibility)")
    print(format_table(["scenario", "measured skew", "gamma"], rows))
    print("  -> with more actual faults than the averaging screens out, the "
          "attackers control the midpoint and agreement is lost.")


def main() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    attacker_families(params)
    fault_tolerant_vs_plain_averaging(params)
    threshold_demo()


if __name__ == "__main__":
    main()
