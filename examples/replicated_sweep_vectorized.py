#!/usr/bin/env python3
"""Vectorized replication: a 1000-replica tightness estimate, timed both ways.

How tight is the Welch-Lynch agreement bound γ in practice?  One seed gives
one draw of the adversary; a *distributional* answer needs many independent
replicas.  This example drives a 1000-seed replication of the maintenance
algorithm under two-faced Byzantine attackers through
:func:`repro.runner.replicate` twice:

* once with the struct-of-arrays batch engine (:mod:`repro.sim.vectorized`)
  engaged — the default for vectorizable streaming specs;
* once with the engine opted out (``vectorize=False`` on the spec), so every
  replica walks the serial event loop.

Both passes return bit-identical summaries (the engine's contract); the point
of running both is the wall-clock ratio printed at the end.  The measured
agreement envelope is then placed between the paper's two bounds: the
ε(1 − 1/n) lower bound no algorithm can beat (Theorem 21) and the γ upper
bound the algorithm guarantees (Theorem 16).

Run with::

    python examples/replicated_sweep_vectorized.py
"""

from __future__ import annotations

import dataclasses
import time

from repro import default_parameters
from repro.core.bounds import agreement_bound, lower_bound
from repro.runner import RunSpec, replicate
from repro.sim.vectorized import vectorized_available

REPLICAS = 1000


def main() -> None:
    params = default_parameters(n=7, f=2)
    spec = RunSpec.maintenance(params, rounds=5, fault_kind="two_faced",
                               record_trace=False,
                               observers=("skew", "validity"))
    seeds = list(range(REPLICAS))

    print(f"replicating n={params.n} f={params.f} rounds=5 two-faced "
          f"maintenance over {REPLICAS} seeds")
    if not vectorized_available():
        print("note: numpy unavailable — both passes run the serial loop")

    begin = time.perf_counter()
    fast = replicate(spec, seeds)
    vector_seconds = time.perf_counter() - begin

    serial_spec = dataclasses.replace(spec, vectorize=False)
    begin = time.perf_counter()
    slow = replicate(serial_spec, seeds)
    serial_seconds = time.perf_counter() - begin

    if fast.agreement_values != slow.agreement_values:
        raise AssertionError("vectorized replication diverged from serial")
    print(f"bit-identity check: all {REPLICAS} agreement values match")
    print(f"serial     {serial_seconds:8.3f} s")
    print(f"vectorized {vector_seconds:8.3f} s   "
          f"({serial_seconds / vector_seconds:.1f}x)")
    print()

    stats = fast.agreement
    lower = lower_bound(params)
    gamma = agreement_bound(params)
    print(f"agreement over {REPLICAS} replicas: mean={stats.mean:.6f} "
          f"ci95=[{stats.ci95_low:.6f}, {stats.ci95_high:.6f}] "
          f"worst={stats.maximum:.6f}")
    print(f"lower bound eps(1-1/n) = {lower:.6f}  <=  worst "
          f"{stats.maximum:.6f}  <=  gamma = {gamma:.6f}")
    print(f"the worst replica uses {stats.maximum / gamma:.0%} of gamma and "
          f"sits {stats.maximum / lower:.1f}x above the information-theoretic "
          f"floor")
    print(f"validity: "
          f"{'no replica violated' if slow.validity_values == fast.validity_values and max(fast.validity_values) == 0.0 else 'VIOLATIONS SEEN'}")


if __name__ == "__main__":
    main()
