#!/usr/bin/env python3
"""Clock drift, the P/β trade-off, and the validity guarantee.

Three things the analysis says about *time quality* (not just mutual
agreement), demonstrated on simulated hardware:

1. **Drift models** — the analysis only needs ρ-boundedness (assumption A1),
   so the library ships several physical-clock models (constant rate,
   piecewise-linear temperature steps, sinusoidal, bounded random walk).  The
   algorithm's agreement is the same under all of them.
2. **The P/β trade-off (Section 5.2)** — resynchronizing less often (larger P)
   lets drift spread the round starts further apart: the steady-state spread
   tracks β ≈ 4ε + 4ρP.
3. **Validity (Theorem 19)** — the synchronized local times advance at a rate
   within [α₁, α₂] of real time; synchronization does not come at the price of
   running the clocks fast or slow, unlike algorithms where faulty processes
   can accelerate everyone.

Run with::

    python examples/drift_and_validity.py
"""

from __future__ import annotations

from repro import default_parameters, measured_agreement, run_maintenance_scenario
from repro.analysis import (
    format_table,
    local_time_rate_estimates,
    steady_state_round_spread,
    validity_report,
)
from repro.core import SyncParameters, agreement_bound, steady_state_beta, validity_parameters


def drift_models(params) -> None:
    rows = []
    gamma = agreement_bound(params)
    for kind in ("perfect", "constant", "piecewise", "sinusoidal", "walk"):
        result = run_maintenance_scenario(params, rounds=10, fault_kind="two_faced",
                                          clock_kind=kind, seed=5)
        settle = result.tmax0 + params.round_length
        skew = measured_agreement(result.trace, settle, result.end_time, samples=150)
        rows.append((kind, skew, gamma))
    print("Agreement under different rho-bounded drift models (Theorem 16 only "
          "needs assumption A1)")
    print(format_table(["drift model", "measured skew", "gamma"], rows))
    print()


def p_beta_tradeoff() -> None:
    # Exaggerated drift (2e-3) so the 4·rho·P term is visible in a short run.
    base = SyncParameters.derive(n=7, f=2, rho=2e-3, delta=0.01, epsilon=0.002)
    p_min, p_max = base.p_lower_bound(), base.p_upper_bound()
    rows = []
    for factor in (1.2, 2.0, 4.0, 8.0):
        P = min(p_min * factor, p_max * 0.9)
        params = SyncParameters.derive(n=7, f=2, rho=2e-3, delta=0.01,
                                       epsilon=0.002, round_length=P)
        result = run_maintenance_scenario(params, rounds=14, fault_kind="silent",
                                          seed=1)
        spread = steady_state_round_spread(result.trace, skip_rounds=4)
        rows.append((P, steady_state_beta(params), spread))
    print("Resynchronization period vs achievable closeness "
          "(rho = 2e-3, Section 5.2: beta ≈ 4*eps + 4*rho*P)")
    print(format_table(["round length P", "paper 4eps+4rhoP", "measured spread"],
                       rows))
    print()


def validity(params) -> None:
    result = run_maintenance_scenario(params, rounds=20, fault_kind="two_faced",
                                      seed=9)
    settle = result.tmax0 + params.round_length
    report = validity_report(result.trace, params, result.tmin0, result.tmax0,
                             settle, result.end_time, samples=150)
    rates = local_time_rate_estimates(result.trace, settle, result.end_time)
    vp = validity_parameters(params)
    print("Validity (Theorem 19): synchronized time still tracks real time")
    print(format_table(
        ["quantity", "value"],
        [("envelope violations over 150 x n samples", report.violations),
         ("slowest local-time rate", min(rates.values())),
         ("fastest local-time rate", max(rates.values())),
         ("alpha1 (lower bound on rate)", vp.alpha1),
         ("alpha2 (upper bound on rate)", vp.alpha2),
         ("alpha3 (offset)", vp.alpha3)]))
    print("  -> resynchronizing every round does not make the clocks run "
          "measurably fast or slow; trivial 'solutions' (e.g. resetting "
          "everything to zero) are ruled out.")


def main() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    drift_models(params)
    p_beta_tradeoff()
    validity(params)


if __name__ == "__main__":
    main()
