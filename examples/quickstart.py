#!/usr/bin/env python3
"""Quickstart: synchronize 7 simulated clocks, 2 of which are Byzantine.

This is the smallest end-to-end use of the library's public API:

1. derive a feasible parameter set from the "hardware" constants
   (drift rate ρ, message delay δ ± ε) using the Section 5.2 constraints;
2. run the Welch-Lynch maintenance algorithm for a number of rounds with the
   full complement of ``f`` Byzantine attackers;
3. compare the measured agreement (maximum skew between nonfaulty local
   times), the per-round adjustments, and the validity envelope against the
   closed-form bounds of Theorems 4, 16 and 19.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    default_parameters,
    measured_agreement,
    run_maintenance_scenario,
)
from repro.analysis import (
    adjustment_statistics,
    format_paper_vs_measured,
    skew_series,
    validity_report,
)
from repro.core import adjustment_bound, agreement_bound, validity_parameters


def main() -> None:
    # 1. Hardware constants: 10 ms median delay, 2 ms uncertainty, drift 1e-4.
    #    `derive` picks a feasible (β, P) pair per the Section 5.2 constraints.
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    print("Parameters")
    print(f"  n = {params.n}, f = {params.f}")
    print(f"  rho = {params.rho}, delta = {params.delta}, epsilon = {params.epsilon}")
    print(f"  beta = {params.beta:.6f}  (initial real-time spread, assumption A4)")
    print(f"  P    = {params.round_length:.6f}  (round length, Section 5.2 window "
          f"[{params.p_lower_bound():.4f}, {params.p_upper_bound():.4f}])")
    print()

    # 2. Run the maintenance algorithm for 15 rounds; the last f = 2 process
    #    ids are two-faced Byzantine attackers that report different clock
    #    values to different recipients.
    result = run_maintenance_scenario(params, rounds=15, fault_kind="two_faced",
                                      seed=42)

    # 3. Measure and compare with the paper's bounds.
    settle = result.tmax0 + params.round_length
    agreement = measured_agreement(result.trace, settle, result.end_time, samples=300)
    adjustments = adjustment_statistics(result.trace)
    validity = validity_report(result.trace, params, result.tmin0, result.tmax0,
                               settle, result.end_time)
    vp = validity_parameters(params)

    print("Paper vs measured")
    print(format_paper_vs_measured([
        ("agreement gamma (Thm 16)", agreement_bound(params), agreement),
        ("max |ADJ| (Thm 4a)", adjustment_bound(params), adjustments.max_abs),
        ("validity violations (Thm 19)", 0, validity.violations),
        ("min clock rate (>= alpha1)", vp.alpha1, validity.min_rate),
        ("max clock rate (<= alpha2)", vp.alpha2, validity.max_rate),
    ]))
    print()

    # A small "figure": the skew over time, sampled at 12 points.
    print("Skew over time (real time -> max nonfaulty skew)")
    for t, skew in skew_series(result.trace, settle, result.end_time, samples=12):
        bar = "#" * int(round(skew / agreement_bound(params) * 40))
        print(f"  t = {t:7.3f}s   skew = {skew:.6f}   {bar}")


if __name__ == "__main__":
    main()
