#!/usr/bin/env python3
"""Round-by-round trace analysis and run auditing.

Production users of a clock-synchronization service care about observability:
when a deployment misbehaves you need to see, round by round, who broadcast
when, what adjustment each node computed, and which paper guarantee (if any)
was violated.  This example shows the library's analysis tooling on two runs:

* a healthy run — the per-round table, the convergence factors, and the
  theorem audit all come back clean;
* a misconfigured run (round length below the Section 5.2 lower bound) — the
  round analysis pinpoints the processes that fell out of the round structure
  and the audit reports which claims broke.

Run with::

    python examples/trace_analysis.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import default_parameters, run_maintenance_scenario
from repro.analysis import (
    build_round_reports,
    check_maintenance_run,
    convergence_factors,
    detect_missed_rounds,
    format_report,
    format_round_table,
    format_series,
    sparkline,
)


def healthy_run(params) -> None:
    result = run_maintenance_scenario(params, rounds=10, fault_kind="two_faced",
                                      seed=11)
    reports = build_round_reports(result.trace)
    print("Healthy run (n=7, f=2 two-faced attackers)")
    print(format_round_table(reports))
    factors = convergence_factors(reports)
    print(format_series("per-round contraction factors", factors, precision=3))
    spreads = [r.spread for r in reports if r.spread is not None]
    print(f"spread shape: {sparkline(spreads)}")
    print()
    print("Theorem audit:")
    print(format_report(check_maintenance_run(result)))
    print()


def misconfigured_run(params) -> None:
    # Violate the Section 5.2 lower bound on P: after an adjustment the next
    # broadcast time can already be in the past, and processes drop out.
    bad = replace(params, round_length=params.p_lower_bound() * 0.45)
    result = run_maintenance_scenario(bad, rounds=8, fault_kind=None, seed=3)
    print("Misconfigured run (P at 45% of its Section 5.2 lower bound)")
    missed = detect_missed_rounds(result.trace)
    if missed:
        for pid, rounds in sorted(missed.items()):
            print(f"  process {pid} fell out of the round structure at "
                  f"round(s) {rounds}")
    else:
        print("  no missed rounds detected")
    reports = build_round_reports(result.trace)
    print(format_round_table(reports[:6]))
    print()
    print("Theorem audit:")
    print(format_report(check_maintenance_run(result)))
    print("  -> the audit and the per-round view localize the failure to the "
          "round schedule, not the averaging.")


def main() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    healthy_run(params)
    misconfigured_run(params)


if __name__ == "__main__":
    main()
