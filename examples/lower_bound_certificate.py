"""The other half of the paper: certify the ε(1 − 1/n) lower bound.

Theorems 4/16/19 say the Welch-Lynch algorithm keeps clocks within γ.  The
paper's impossibility result says no algorithm — this one included — can
guarantee better than ε(1 − 1/n), proved by the *shifting argument*.  This
example runs that argument end to end:

1. execute a fault-free base run under the all-δ delay assignment, recording
   every message;
2. build the proof's chain of n shifted executions, audit every retimed
   delay against the [δ−ε, δ+ε] envelope, and check indistinguishability;
3. emit a machine-checkable certificate, re-verify it offline from its JSON
   serialization alone, and place the achieved skew inside the
   lower-bound-to-γ tightness window.

Run with:  PYTHONPATH=src python examples/lower_bound_certificate.py
"""

from repro.adversary import (
    certify_lower_bound,
    LowerBoundCertificate,
    verify_certificate,
)
from repro.analysis import default_parameters
from repro.core.bounds import lower_bound, tightness_gap

n = 5
params = default_parameters(n=n, f=0)
certificate = certify_lower_bound(n=n, rounds=6, seed=0)

# -- 1. the chain of shifted executions --------------------------------------
print(f"n = {n}: lower bound eps(1 - 1/n) = {certificate.bound:.6f}, "
      f"gamma = {certificate.gamma:.6f}")
print(f"chain (by descending local time): "
      f"{' > '.join(str(pid) for pid in certificate.chain)}, "
      f"shift unit {certificate.unit:.6g}")
for item in certificate.executions:
    print(f"  E_{item.index}: spread {item.spread:.6f}  "
          f"delays [{item.min_delay:.6f}, {item.max_delay:.6f}]  "
          f"skew {item.skew:.6f}  "
          f"{'admissible' if item.admissible else 'INADMISSIBLE'}")

# -- 2. the certified claim ---------------------------------------------------
assert certificate.verified, "every execution admissible, views preserved"
assert certificate.meets_lower_bound
assert certificate.bound == lower_bound(params)
print(f"achieved skew {certificate.achieved_skew:.6f} >= "
      f"{certificate.bound:.6f} ({certificate.margin:.2f}x the bound)")

# -- 3. offline re-verification from the serialized form ----------------------
payload = certificate.to_json()
clone = LowerBoundCertificate.from_json(payload)
problems = verify_certificate(clone)
assert clone == certificate and problems == []
print(f"certificate re-verified offline from {len(payload)} bytes of JSON: "
      f"0 problems")

# -- 4. the tightness window --------------------------------------------------
gap = tightness_gap(params, certificate.achieved_skew)
print(f"tightness: achieved/lower = {gap.achieved_over_lower:.2f}, "
      f"achieved/gamma = {gap.achieved_over_gamma:.2f}, "
      f"window looseness gamma/lower = {gap.gamma_over_lower:.2f}")
