#!/usr/bin/env python3
"""Section 10 comparison: Welch-Lynch against the other 1980s synchronizers.

Runs every algorithm the paper compares against — Lamport & Melliar-Smith's
interactive convergence, Mahaney & Schneider's inexact agreement,
Srikanth & Toueg, Halpern-Simons-Strong-Dolev (signatures), Marzullo's
intervals — plus an unsynchronized control, all on an identical workload
(same drifting clocks, same message delays, same two-faced Byzantine
attackers), and prints the comparison table the paper discusses
qualitatively: achieved agreement, maximum adjustment size, messages per
round, next to the paper's own closed-form estimate where it states one.

It then repeats the key n-dependence experiment: the Welch-Lynch agreement is
O(ε) independent of n, while interactive convergence degrades like 2nε.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import default_parameters, run_comparison
from repro.analysis import format_table, measured_agreement, run_algorithm_scenario


def comparison_table(params) -> None:
    rows = run_comparison(params, rounds=10, fault_kind="two_faced", seed=0)
    print(f"Section 10 comparison on one workload (n = {params.n}, f = {params.f}, "
          f"delta = {params.delta}, epsilon = {params.epsilon})")
    print(format_table(
        ["algorithm", "agreement", "max |ADJ|", "msgs/round",
         "paper agreement", "paper |ADJ|"],
        [(r.algorithm, r.agreement, r.max_adjustment, r.messages_per_round,
          r.paper_agreement, r.paper_adjustment) for r in rows],
        precision=4))
    print()


def n_dependence() -> None:
    print("Agreement as the system grows (f = 2 throughout)")
    rows = []
    for n in (7, 10, 13, 16):
        params = default_parameters(n=n, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
        per_algorithm = {}
        for algorithm in ("welch_lynch", "lamport_melliar_smith"):
            result = run_algorithm_scenario(algorithm, params, rounds=8,
                                            fault_kind="two_faced", seed=3)
            settle = result.tmax0 + 2 * params.round_length
            per_algorithm[algorithm] = measured_agreement(
                result.trace, settle, result.end_time, samples=150)
        rows.append((n, per_algorithm["welch_lynch"],
                     per_algorithm["lamport_melliar_smith"],
                     per_algorithm["lamport_melliar_smith"]
                     / per_algorithm["welch_lynch"]))
    print(format_table(["n", "welch_lynch", "lamport_melliar_smith", "LM / WL"],
                       rows, precision=4))
    print("  -> the paper's point: WL's error is set by the delay uncertainty "
          "epsilon alone, while interactive convergence pays a factor that "
          "grows with n.")


def main() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    comparison_table(params)
    n_dependence()


if __name__ == "__main__":
    main()
