#!/usr/bin/env python3
"""Parameter sweeps, replication and ASCII figures.

The paper's trade-off discussions (Sections 5.2, 7 and 10) are all of the
form "quantity Q as parameter X varies".  This example uses the library's
sweep, statistics and plotting layers to regenerate three of them as small
terminal figures, and shows how to export the underlying data:

* agreement vs the delay uncertainty ε (with the Theorem 16 bound);
* steady-state round spread vs the round length P (the β ≈ 4ε + 4ρP line);
* how much head-room the Theorem 16 bound has across 10 random seeds.

Run with::

    python examples/parameter_sweeps.py
"""

from __future__ import annotations

from repro import default_parameters
from repro.analysis import (
    agreement_margin_report,
    format_table,
    line_plot,
    rows_to_csv,
    sparkline,
    sweep_epsilon,
    sweep_round_length,
    sweep_to_dicts,
)


def epsilon_sweep_figure() -> None:
    epsilons = [0.0005, 0.001, 0.002, 0.003, 0.004]
    sweep = sweep_epsilon(epsilons, rounds=8, seed=3)
    print("Agreement vs delay uncertainty (Theorem 16's gamma alongside)")
    print(format_table(sweep.headers(), sweep.rows(), precision=4))
    print()
    print(line_plot({"gamma": sweep.column("gamma"),
                     "measured": sweep.column("agreement")},
                    width=50, height=10,
                    title="agreement vs epsilon (x = sweep index)"))
    print()


def round_length_sweep_figure() -> None:
    base = default_parameters(n=7, f=2, rho=2e-3, delta=0.01, epsilon=0.002)
    p_min = base.p_lower_bound()
    lengths = [p_min * factor for factor in (1.2, 2, 4, 8)]
    sweep = sweep_round_length(lengths, rounds=12, seed=1)
    print("Steady-state round spread vs round length P (rho = 2e-3)")
    print(format_table(sweep.headers(), sweep.rows(), precision=4))
    print("shape:", sparkline(sweep.column("spread")))
    print()
    print("CSV of the sweep (for external plotting):")
    print(rows_to_csv(sweep_to_dicts(sweep)))


def seed_replication() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    report = agreement_margin_report(params, seeds=range(10), rounds=8)
    print("Head-room under gamma across 10 seeds (two-faced attackers)")
    print(format_table(["quantity", "value"], sorted(report.items()), precision=4))
    print("  -> margin is the fraction of gamma left above the worst observed "
          "skew; a comfortable reproduction keeps it well above 0.")


def main() -> None:
    epsilon_sweep_figure()
    round_length_sweep_figure()
    seed_replication()


if __name__ == "__main__":
    main()
