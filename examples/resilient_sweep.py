#!/usr/bin/env python3
"""Crash-safe sweeps: durable results, supervised workers, chaos, resume.

Long parameter sweeps die to preemptions, OOM kills and flaky specs.  The
resilience layer makes them restartable instead of rerunnable: every
completed spec is committed to a content-addressed sqlite store the moment
it arrives, workers run under a supervisor that respawns crashes and retries
failures with backoff, and a poison spec is quarantined (with its traceback)
rather than taking the sweep down.  This example uses the deterministic
chaos harness to stage the failures on purpose:

* a sweep is interrupted midway — exactly what a SIGKILL leaves behind —
  then resumed to a result bit-identical to an uninterrupted run;
* a worker is SIGKILLed and an injected exception forces a retry, both
  invisible in the final table but visible in the telemetry counters;
* a spec that fails every attempt is quarantined and reported, while the
  rest of the sweep completes.

The CLI equivalents are ``repro sweep --store results.sqlite`` (persist),
``--resume`` (skip stored specs) and ``repro store status`` (inspect).

Run with::

    python examples/resilient_sweep.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.analysis.sweeps import sweep_epsilon
from repro.runner import (
    ChaosFault,
    ChaosSchedule,
    ResilientRunner,
    ResultStore,
    SweepInterrupted,
)
from repro.telemetry import Telemetry

EPSILONS = [0.001, 0.002, 0.003, 0.004]

#: near-instant backoff so the staged retries do not slow the example down.
FAST = dict(max_retries=2, backoff_base=0.01, backoff_cap=0.05)


def epsilon_sweep(runner=None):
    return sweep_epsilon(EPSILONS, n=4, f=1, rounds=3, runner=runner)


def interrupted_then_resumed(store_path: str) -> None:
    print("== interrupt midway, then resume ==")
    # Chaos stages the outage: the worker on spec 0 is SIGKILLed once (the
    # supervisor respawns it and retries), and the sweep is cut down right
    # before spec 3 is dispatched.
    chaos = ChaosSchedule(faults=(ChaosFault(0, "kill", attempts=1),
                                  ChaosFault(3, "interrupt", attempts=1)))
    telemetry = Telemetry()
    runner = ResilientRunner(jobs=1, cache=False, store=store_path,
                             chaos=chaos, telemetry=telemetry, **FAST)
    try:
        epsilon_sweep(runner=runner)
    except SweepInterrupted as exc:
        print(f"sweep died: {exc}")
    counters = telemetry.registry.snapshot()
    crashes = counters["resilient.crashes"]["value"]
    with ResultStore(store_path) as store:
        print(f"store kept {len(store)} finished specs "
              f"({crashes:.0f} worker crash survived)")

    # Resume: stored specs are served bit-identically, only the missing
    # ones execute.  The table equals an uninterrupted run's.
    resumed = ResilientRunner(jobs=1, cache=False, store=store_path,
                              resume=True, **FAST)
    recovered = epsilon_sweep(runner=resumed)
    clean = epsilon_sweep()
    identical = recovered.rows() == clean.rows()
    print(f"resumed sweep bit-identical to uninterrupted run: {identical}")
    assert identical
    print()


def poison_spec_is_quarantined() -> None:
    print("== a poison spec quarantines; the sweep completes ==")
    telemetry = Telemetry()
    runner = ResilientRunner(
        jobs=1, cache=False, telemetry=telemetry, max_retries=1,
        backoff_base=0.01,
        chaos=ChaosSchedule.single(1, "raise", attempts=10))
    table = epsilon_sweep(runner=runner)
    counters = telemetry.registry.snapshot()
    print(f"retries: {counters['resilient.retries']['value']:.0f}, "
          f"quarantined: {counters['resilient.quarantined']['value']:.0f}")
    for point, epsilon in zip(table.points, EPSILONS):
        outcome = ("FAILED after retries exhausted"
                   if "failed_runs" in point.outputs else
                   f"agreement {point.outputs['agreement']:.6f}")
        print(f"  epsilon={epsilon}: {outcome}")
    print()


def store_introspection(store_path: str) -> None:
    print("== the durable store is inspectable ==")
    with ResultStore(store_path) as store:
        status = store.status()
        print(f"schema v{status['schema_version']}, "
              f"{status['results']} results "
              f"({status['size_bytes']:,} bytes), "
              f"{status['quarantined']} quarantined, "
              f"by kind: {status['by_kind']}")
        removed = store.gc(older_than=3600.0, vacuum=False)
        print(f"gc(older_than=1h) removed {removed['removed_results']} "
              f"results (everything is fresh)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-resilient-") as scratch:
        store_path = str(Path(scratch) / "sweep.sqlite")
        interrupted_then_resumed(store_path)
        poison_spec_is_quarantined()
        store_introspection(store_path)


if __name__ == "__main__":
    main()
