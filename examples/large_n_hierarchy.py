#!/usr/bin/env python3
"""A 10,000-process star-of-stars synchronized by the per-round engine.

Real NTP-style deployments synchronize huge leaf populations through a small
core via strata.  This example builds the ``hierarchy`` topology — one core,
~100 mid-tier hubs, ~9,900 leaves, diameter 4 regardless of n — and runs
Welch-Lynch maintenance over it in streaming mode at a size the serial event
loop cannot touch interactively: each round is all-to-all, so two rounds
dispatch ~2·10^8 deliveries.

Two passes make the engineering point:

* a **control slice** (n=400, same workload): the serial loop and the
  per-round engine (:mod:`repro.sim.roundengine`) both run it, their wall
  clocks are compared, and the online skew envelope plus the full message
  statistics are asserted *bit-identical* — the engine's contract;
* the **full population** (n=10,000): round engine only, streamed through
  the online observers at O(n) memory, audited against the
  topology-corrected agreement bound γ'.

Run with::

    python examples/large_n_hierarchy.py
"""

from __future__ import annotations

import dataclasses
import time

from repro import default_parameters
from repro.analysis.experiments import effective_parameters
from repro.core.bounds import agreement_bound
from repro.runner import RunSpec, execute
from repro.sim.roundengine import roundengine_available
from repro.topology.generators import make_topology

CONTROL_N = 400
FULL_N = 10_000
ROUNDS = 2


def spec_for(n: int, engine: bool) -> RunSpec:
    params = default_parameters(n=n, f=2)
    return RunSpec.maintenance(
        params, rounds=ROUNDS, fault_kind=None, topology="hierarchy",
        record_trace=False, observers=("skew", "validity"), seed=7,
        max_events=4 * n * n * ROUNDS + 10_000,
        round_engine=engine, vectorize=None if engine else False)


def main() -> None:
    if not roundengine_available():
        print("numpy not available — the per-round engine is offline; "
              "skipping the large-n demonstration")
        return

    print(f"== control slice: n={CONTROL_N} hierarchy, serial vs round "
          f"engine")
    start = time.perf_counter()
    serial = execute(spec_for(CONTROL_N, engine=False))
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine = execute(spec_for(CONTROL_N, engine=True))
    engine_seconds = time.perf_counter() - start

    serial_skew = serial.online("skew").max_skew
    engine_skew = engine.online("skew").max_skew
    assert serial_skew == engine_skew, "online skew diverged from serial"
    assert serial.trace.stats == engine.trace.stats, "stats diverged"
    print(f"   serial {serial_seconds:6.2f}s   engine {engine_seconds:6.2f}s "
          f"({serial_seconds / engine_seconds:.1f}x)   max skew "
          f"{engine_skew:.6f}  — bit-identical")

    print(f"== full population: n={FULL_N} hierarchy, round engine, "
          f"streaming")
    spec = spec_for(FULL_N, engine=True)
    start = time.perf_counter()
    result = execute(spec)
    seconds = time.perf_counter() - start
    stats = result.trace.stats
    topology = make_topology("hierarchy", FULL_N)
    gamma = agreement_bound(effective_parameters(spec.params, topology))
    skew = result.online("skew").max_skew
    validity = result.online("validity").report()
    print(f"   {seconds:.1f}s wall clock, {stats.delivered:,} deliveries "
          f"({stats.delivered / seconds:,.0f}/s), {stats.relayed:,} relayed")
    print(f"   online max skew {skew:.6f} vs topology-corrected gamma' "
          f"{gamma:.6f} [{'pass' if skew <= gamma + 1e-9 else 'FAIL'}]")
    print(f"   online validity: {validity.violations} violations over "
          f"{validity.samples:,} samples "
          f"[{'pass' if validity.holds else 'FAIL'}]")
    assert skew <= gamma + 1e-9 and validity.holds


if __name__ == "__main__":
    main()
