"""Long-horizon streaming: online metrics, bounded memory, checkpoint/resume.

The Lundelius-Lynch bound is a steady-state guarantee, so the interesting
regime is *many* resynchronization rounds under drift.  Recording a full
execution trace caps how far a run can go; the streaming observer pipeline
removes the cap:

1. run 60 rounds at n = 40 with ``record_trace=False`` — no event log, bounded
   correction histories, metrics computed online in O(n) memory;
2. verify the online skew/validity numbers against the paper bounds;
3. split the same run with periodic snapshot/restore checkpoints and show the
   result is bit-identical to the unsegmented run.

Run with:  PYTHONPATH=src python examples/long_horizon_streaming.py
"""

from repro.analysis import default_parameters
from repro.core.bounds import agreement_bound
from repro.runner import RunSpec, execute

params = default_parameters(n=40, f=2)
rounds = 60

# -- 1. stream a long horizon ------------------------------------------------
spec = RunSpec.maintenance(params, rounds=rounds, fault_kind="silent",
                           seed=11, record_trace=False,
                           observers=("skew", "validity", "network"))
result = execute(spec)

stats = result.trace.stats
print(f"streamed {rounds} rounds at n={params.n}: "
      f"{stats.delivered} messages delivered, "
      f"{len(result.trace.events)} trace events retained (none, by design)")

# -- 2. online metrics vs the paper bounds ------------------------------------
skew = result.online("skew")
validity = result.online("validity").report()
network = result.online("network")
gamma = agreement_bound(result.params)
print(f"online agreement: max skew {skew.max_skew:.6f} vs gamma {gamma:.6f} "
      f"({'holds' if skew.max_skew <= gamma else 'VIOLATED'})")
print(f"online validity: {validity.violations} violations over "
      f"{validity.samples} samples, rates in "
      f"[{validity.min_rate:.6f}, {validity.max_rate:.6f}]")
print(f"network observer saw {len(network.records)} end-to-end sends "
      f"({stats.dropped} dropped)")
assert skew.max_skew <= gamma and validity.holds

# -- 3. checkpointed run is bit-identical -------------------------------------
checkpointed = execute(spec.replace(checkpoint_every=2.0))
print(f"checkpointed run: {checkpointed.checkpoints} snapshot/restore round "
      f"trips")
same = (checkpointed.online("skew").max_skew == skew.max_skew
        and checkpointed.online("validity").report() == validity)
print(f"bit-identical to the unsegmented run: {same}")
assert same
