#!/usr/bin/env python3
"""Start-up and reintegration: the Section 9 extensions.

The maintenance algorithm assumes the clocks already start close together
(assumption A4).  This example exercises the two extensions that remove that
assumption in practice:

* **Start-up (Section 9.2)** — the clocks begin with *arbitrary* values (here
  spread over two full seconds, 200x the message delay) and the READY-message
  protocol brings them to within about 4ε, halving the spread each round
  (Lemma 20);
* **Reintegration (Section 9.1)** — one process crashes, is repaired mid-round
  with a badly wrong clock, passively listens for part of a round, performs
  one fault-tolerant averaging step, and is synchronized again from the next
  round on while the rest of the system never notices.

Run with::

    python examples/startup_and_reintegration.py
"""

from __future__ import annotations

from repro import default_parameters
from repro.analysis import (
    format_series,
    format_table,
    measured_agreement,
    run_reintegration_scenario,
    run_startup_scenario,
    startup_spread_series,
)
from repro.core import (
    agreement_bound,
    startup_convergence_series,
    startup_limit,
)
from repro.faults import rejoin_time


def startup_demo(params) -> None:
    initial_spread = 2.0
    result = run_startup_scenario(params, rounds=10, initial_spread=initial_spread,
                                  fault_kind="random_noise", seed=7)
    measured = startup_spread_series(result.trace)
    paper = startup_convergence_series(params, measured[0], len(measured) - 1)

    print("Start-up from arbitrary clocks (initial spread = "
          f"{initial_spread:.1f} s, f = {params.f} Byzantine)")
    print(format_series("  measured B^i ", measured, precision=4))
    print(format_series("  Lemma 20 bound", paper, precision=4))
    print(f"  limit ≈ 4ε = {startup_limit(params):.6f}; "
          f"final measured spread = {measured[-1]:.6f}")
    print()


def reintegration_demo(params) -> None:
    rounds = 12
    recover_after = 4.5
    result = run_reintegration_scenario(params, rounds=rounds,
                                        recover_after_rounds=recover_after,
                                        recovered_clock_offset=1.0, seed=0)
    repaired = params.n - 1
    when = rejoin_time(result.trace, repaired)
    gamma = agreement_bound(params)

    # Skew of the repaired process against the group, before and after rejoin.
    def group_skew(t: float) -> float:
        times = result.trace.local_times(t, include_faulty=True)
        return max(times.values()) - min(times.values())

    before = group_skew(when - params.round_length / 2.0)
    after = group_skew(when + params.round_length)
    end = group_skew(result.end_time - params.round_length)
    others = measured_agreement(result.trace, result.tmax0 + params.round_length,
                                result.end_time, samples=200)

    print("Reintegration of a repaired process (clock 1.0 s wrong at repair)")
    print(format_table(
        ["quantity", "value"],
        [("repair scheduled at (rounds)", recover_after),
         ("rejoined (applied its correction) at real time", when),
         ("skew incl. repaired, half a round BEFORE rejoin", before),
         ("skew incl. repaired, one round AFTER rejoin", after),
         ("skew incl. repaired, end of run", end),
         ("nonfaulty group skew over whole run (<= gamma)", others),
         ("gamma (Thm 16)", gamma)]))
    print("  -> the repaired clock goes from ~1 s wrong to inside the agreement "
          "envelope after a single averaging step, and the other processes'\n"
          "     agreement never degrades (they simply counted it among the f "
          "possible faults while it was away).")


def main() -> None:
    params = default_parameters(n=7, f=2, rho=1e-4, delta=0.01, epsilon=0.002)
    startup_demo(params)
    reintegration_demo(params)


if __name__ == "__main__":
    main()
